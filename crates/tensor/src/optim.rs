//! Parameters and the Adam optimizer.

use wisdom_prng::Prng;

/// A trainable parameter tensor with its Adam moment buffers.
///
/// # Examples
///
/// ```
/// use wisdom_tensor::{Adam, AdamConfig, ParamTensor};
/// use wisdom_prng::Prng;
///
/// let mut rng = Prng::seed_from_u64(0);
/// let mut p = ParamTensor::randn(2, 2, 0.02, &mut rng);
/// let grads = vec![0.1, -0.1, 0.2, 0.0];
/// let before = p.data.clone();
/// let mut adam = Adam::new(AdamConfig::default());
/// adam.begin_step();
/// adam.update(&mut p, &grads);
/// assert_ne!(p.data, before);
/// ```
#[derive(Debug, Clone)]
pub struct ParamTensor {
    /// Current values, row-major.
    pub data: Vec<f32>,
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl ParamTensor {
    /// Creates a parameter filled with `value`.
    pub fn constant(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
            m: vec![0.0; rows * cols],
            v: vec![0.0; rows * cols],
        }
    }

    /// Creates a zero-initialized parameter.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::constant(rows, cols, 0.0)
    }

    /// Creates a parameter with N(0, `std_dev`²) initialization.
    pub fn randn(rows: usize, cols: usize, std_dev: f32, rng: &mut Prng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.normal_f32(0.0, std_dev))
            .collect();
        Self {
            data,
            rows,
            cols,
            m: vec![0.0; rows * cols],
            v: vec![0.0; rows * cols],
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Base learning rate (may be rescaled per step via [`Adam::set_lr`]).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style); 0 disables.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 5e-5, // the paper's fine-tuning learning rate
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// The Adam optimizer. One instance drives all parameters of a model; call
/// [`Adam::begin_step`] once per batch, then [`Adam::update`] per parameter.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Self { cfg, t: 0 }
    }

    /// Current step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Overrides the learning rate (used by schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Advances the shared step counter; call once per optimization step
    /// before updating any parameter.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies one Adam update to `param` using `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != param.len()` or if `begin_step` has never
    /// been called.
    pub fn update(&self, param: &mut ParamTensor, grads: &[f32]) {
        assert_eq!(grads.len(), param.len(), "grad shape mismatch");
        assert!(self.t > 0, "call begin_step before update");
        let c = &self.cfg;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for (((w, &g), m), v) in param
            .data
            .iter_mut()
            .zip(grads)
            .zip(param.m.iter_mut())
            .zip(param.v.iter_mut())
        {
            *m = c.beta1 * *m + (1.0 - c.beta1) * g;
            *v = c.beta2 * *v + (1.0 - c.beta2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            let mut delta = c.lr * m_hat / (v_hat.sqrt() + c.eps);
            if c.weight_decay > 0.0 {
                delta += c.lr * c.weight_decay * *w;
            }
            *w -= delta;
        }
    }
}

/// Computes the global L2 norm across several gradient slices.
pub fn global_grad_norm<'a, I>(grads: I) -> f32
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut sum = 0.0f64;
    for g in grads {
        for &x in g {
            sum += f64::from(x) * f64::from(x);
        }
    }
    (sum as f32).sqrt()
}

/// Returns the multiplier that clips a gradient of norm `norm` to
/// `max_norm` (1.0 when already within bounds).
pub fn clip_scale(norm: f32, max_norm: f32) -> f32 {
    if norm > max_norm && norm > 0.0 {
        max_norm / norm
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_moves_against_gradient() {
        let mut p = ParamTensor::constant(1, 2, 1.0);
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            ..Default::default()
        });
        adam.begin_step();
        adam.update(&mut p, &[1.0, -1.0]);
        assert!(p.data[0] < 1.0);
        assert!(p.data[1] > 1.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (x-3)^2 ; grad = 2(x-3)
        let mut p = ParamTensor::zeros(1, 1);
        let mut adam = Adam::new(AdamConfig {
            lr: 0.3,
            ..Default::default()
        });
        for _ in 0..200 {
            let g = 2.0 * (p.data[0] - 3.0);
            adam.begin_step();
            adam.update(&mut p, &[g]);
        }
        assert!((p.data[0] - 3.0).abs() < 0.05, "{}", p.data[0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut p = ParamTensor::constant(1, 1, 5.0);
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            ..Default::default()
        });
        for _ in 0..50 {
            adam.begin_step();
            adam.update(&mut p, &[0.0]);
        }
        assert!(p.data[0] < 1.0, "{}", p.data[0]);
    }

    #[test]
    fn grad_norm_and_clip() {
        let a = vec![3.0f32, 0.0];
        let b = vec![0.0f32, 4.0];
        let norm = global_grad_norm([a.as_slice(), b.as_slice()]);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((clip_scale(norm, 1.0) - 0.2).abs() < 1e-6);
        assert_eq!(clip_scale(0.5, 1.0), 1.0);
    }

    #[test]
    fn randn_init_statistics() {
        let mut rng = Prng::seed_from_u64(5);
        let p = ParamTensor::randn(100, 100, 0.02, &mut rng);
        let mean: f32 = p.data.iter().sum::<f32>() / p.len() as f32;
        let std: f32 =
            (p.data.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / p.len() as f32).sqrt();
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((std - 0.02).abs() < 0.002, "std {std}");
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_without_begin_step_panics() {
        let mut p = ParamTensor::zeros(1, 1);
        let adam = Adam::new(AdamConfig::default());
        adam.update(&mut p, &[0.0]);
    }
}
