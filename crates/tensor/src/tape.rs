//! Tape-based reverse-mode automatic differentiation over 2-D f32 tensors.
//!
//! Every training step builds a fresh [`Tape`]; operations append nodes and
//! return [`TensorRef`] handles; [`Tape::backward`] walks the tape in reverse
//! accumulating gradients. The op set is exactly what a GPT-style decoder
//! needs: matmul, bias add, residual add, GELU, LayerNorm, embedding gather,
//! fused causal multi-head self-attention, and fused
//! softmax-cross-entropy.

use crate::kernels::{
    dot, gelu, gelu_grad, matmul_a_bt_acc, matmul_acc, matmul_at_b_acc, softmax_row,
};

/// Handle to a tensor on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorRef(usize);

#[derive(Debug)]
enum Op {
    Leaf,
    MatMul(TensorRef, TensorRef),
    Add(TensorRef, TensorRef),
    AddRowBias(TensorRef, TensorRef),
    Scale(TensorRef, f32),
    Gelu(TensorRef),
    LayerNorm {
        x: TensorRef,
        gain: TensorRef,
        bias: TensorRef,
        rstd: Vec<f32>,
        normed: Vec<f32>,
    },
    Embedding {
        table: TensorRef,
        ids: Vec<usize>,
    },
    Attention {
        q: TensorRef,
        k: TensorRef,
        v: TensorRef,
        batch: usize,
        time: usize,
        heads: usize,
        att: Vec<f32>,
    },
    CrossEntropy {
        logits: TensorRef,
        targets: Vec<usize>,
        probs: Vec<f32>,
    },
}

#[derive(Debug)]
struct Node {
    data: Vec<f32>,
    grad: Vec<f32>,
    rows: usize,
    cols: usize,
    op: Op,
}

/// A gradient tape: an arena of tensors plus the recorded computation.
///
/// # Examples
///
/// ```
/// use wisdom_tensor::Tape;
///
/// let mut tape = Tape::new();
/// let a = tape.leaf(vec![1.0, 2.0], 1, 2);
/// let b = tape.leaf(vec![3.0, 4.0, 5.0, 6.0], 2, 2);
/// let c = tape.matmul(a, b); // [1x2] @ [2x2]
/// assert_eq!(tape.data(c), &[13.0, 16.0]);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded tensors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, data: Vec<f32>, rows: usize, cols: usize, op: Op) -> TensorRef {
        debug_assert_eq!(data.len(), rows * cols);
        let grad = vec![0.0; data.len()];
        self.nodes.push(Node {
            data,
            grad,
            rows,
            cols,
            op,
        });
        TensorRef(self.nodes.len() - 1)
    }

    /// Adds a leaf tensor (input or parameter) with the given contents.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn leaf(&mut self, data: Vec<f32>, rows: usize, cols: usize) -> TensorRef {
        assert_eq!(data.len(), rows * cols, "leaf shape mismatch");
        self.push(data, rows, cols, Op::Leaf)
    }

    /// The forward values of `t`.
    pub fn data(&self, t: TensorRef) -> &[f32] {
        &self.nodes[t.0].data
    }

    /// The accumulated gradient of `t` (all zeros before `backward`).
    pub fn grad(&self, t: TensorRef) -> &[f32] {
        &self.nodes[t.0].grad
    }

    /// The `(rows, cols)` shape of `t`.
    pub fn shape(&self, t: TensorRef) -> (usize, usize) {
        let n = &self.nodes[t.0];
        (n.rows, n.cols)
    }

    /// Matrix product `a @ b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&mut self, a: TensorRef, b: TensorRef) -> TensorRef {
        let (m, ka) = self.shape(a);
        let (kb, n) = self.shape(b);
        assert_eq!(ka, kb, "matmul inner dims {ka} vs {kb}");
        let mut out = vec![0.0; m * n];
        matmul_acc(
            &self.nodes[a.0].data,
            &self.nodes[b.0].data,
            m,
            ka,
            n,
            &mut out,
        );
        self.push(out, m, n, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shape tensors (residual connections).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: TensorRef, b: TensorRef) -> TensorRef {
        assert_eq!(self.shape(a), self.shape(b), "add shape mismatch");
        let (rows, cols) = self.shape(a);
        let data: Vec<f32> = self.nodes[a.0]
            .data
            .iter()
            .zip(self.nodes[b.0].data.iter())
            .map(|(x, y)| x + y)
            .collect();
        self.push(data, rows, cols, Op::Add(a, b))
    }

    /// Adds a `(1, cols)` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a single row of matching width.
    pub fn add_row_bias(&mut self, a: TensorRef, bias: TensorRef) -> TensorRef {
        let (rows, cols) = self.shape(a);
        assert_eq!(self.shape(bias), (1, cols), "bias must be (1, cols)");
        let mut data = self.nodes[a.0].data.clone();
        let b = &self.nodes[bias.0].data;
        for r in 0..rows {
            for c in 0..cols {
                data[r * cols + c] += b[c];
            }
        }
        self.push(data, rows, cols, Op::AddRowBias(a, bias))
    }

    /// Multiplies every element by the constant `factor`.
    pub fn scale(&mut self, a: TensorRef, factor: f32) -> TensorRef {
        let (rows, cols) = self.shape(a);
        let data: Vec<f32> = self.nodes[a.0].data.iter().map(|x| x * factor).collect();
        self.push(data, rows, cols, Op::Scale(a, factor))
    }

    /// GELU activation, element-wise.
    pub fn gelu(&mut self, a: TensorRef) -> TensorRef {
        let (rows, cols) = self.shape(a);
        let data: Vec<f32> = self.nodes[a.0].data.iter().map(|&x| gelu(x)).collect();
        self.push(data, rows, cols, Op::Gelu(a))
    }

    /// Row-wise LayerNorm with learned gain and bias (both `(1, cols)`).
    ///
    /// # Panics
    ///
    /// Panics if gain/bias shapes do not match.
    pub fn layer_norm(&mut self, x: TensorRef, gain: TensorRef, bias: TensorRef) -> TensorRef {
        const EPS: f32 = 1e-5;
        let (rows, cols) = self.shape(x);
        assert_eq!(self.shape(gain), (1, cols), "gain must be (1, cols)");
        assert_eq!(self.shape(bias), (1, cols), "bias must be (1, cols)");
        let xd = &self.nodes[x.0].data;
        let g = &self.nodes[gain.0].data;
        let b = &self.nodes[bias.0].data;
        let mut out = vec![0.0; rows * cols];
        let mut rstd = vec![0.0; rows];
        let mut normed = vec![0.0; rows * cols];
        for r in 0..rows {
            let row = &xd[r * cols..(r + 1) * cols];
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let rs = 1.0 / (var + EPS).sqrt();
            rstd[r] = rs;
            for c in 0..cols {
                let nv = (row[c] - mean) * rs;
                normed[r * cols + c] = nv;
                out[r * cols + c] = nv * g[c] + b[c];
            }
        }
        self.push(
            out,
            rows,
            cols,
            Op::LayerNorm {
                x,
                gain,
                bias,
                rstd,
                normed,
            },
        )
    }

    /// Gathers rows of `table` by index: output row `i` is `table[ids[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn embedding(&mut self, table: TensorRef, ids: &[usize]) -> TensorRef {
        let (vocab, dim) = self.shape(table);
        let td = &self.nodes[table.0].data;
        let mut out = vec![0.0; ids.len() * dim];
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < vocab, "embedding id {id} out of range {vocab}");
            out[i * dim..(i + 1) * dim].copy_from_slice(&td[id * dim..(id + 1) * dim]);
        }
        self.push(
            out,
            ids.len(),
            dim,
            Op::Embedding {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    /// Fused causal multi-head self-attention.
    ///
    /// `q`, `k`, `v` are `(batch*time, heads*head_dim)` with row `b*time + t`;
    /// the output has the same shape. Attention weights are causal
    /// (position `t` attends to `0..=t`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with `batch`/`time`/`heads`.
    pub fn causal_attention(
        &mut self,
        q: TensorRef,
        k: TensorRef,
        v: TensorRef,
        batch: usize,
        time: usize,
        heads: usize,
    ) -> TensorRef {
        let (rows, width) = self.shape(q);
        assert_eq!(rows, batch * time, "attention rows");
        assert_eq!(self.shape(k), (rows, width), "k shape");
        assert_eq!(self.shape(v), (rows, width), "v shape");
        assert_eq!(
            width % heads,
            0,
            "width {width} not divisible by heads {heads}"
        );
        let hd = width / heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let qd = &self.nodes[q.0].data;
        let kd = &self.nodes[k.0].data;
        let vd = &self.nodes[v.0].data;
        let mut att = vec![0.0; batch * heads * time * time];
        let mut out = vec![0.0; rows * width];
        for b in 0..batch {
            for h in 0..heads {
                let att_base = (b * heads + h) * time * time;
                for t in 0..time {
                    let q_row = &qd[(b * time + t) * width + h * hd..][..hd];
                    let att_row = &mut att[att_base + t * time..att_base + (t + 1) * time];
                    for (t2, cell) in att_row.iter_mut().enumerate().take(t + 1) {
                        let k_row = &kd[(b * time + t2) * width + h * hd..][..hd];
                        *cell = dot(q_row, k_row) * scale;
                    }
                    for cell in att_row.iter_mut().skip(t + 1) {
                        *cell = f32::NEG_INFINITY;
                    }
                    softmax_row(att_row);
                    // out[t] = sum_t2 att[t][t2] * v[t2]
                    let out_row = &mut out[(b * time + t) * width + h * hd..][..hd];
                    for t2 in 0..=t {
                        let w = att_row[t2];
                        if w == 0.0 {
                            continue;
                        }
                        let v_row = &vd[(b * time + t2) * width + h * hd..][..hd];
                        for (o, &vv) in out_row.iter_mut().zip(v_row.iter()) {
                            *o += w * vv;
                        }
                    }
                }
            }
        }
        self.push(
            out,
            rows,
            width,
            Op::Attention {
                q,
                k,
                v,
                batch,
                time,
                heads,
                att,
            },
        )
    }

    /// Fused softmax + mean cross-entropy loss over rows of `logits`.
    ///
    /// Rows whose target is `usize::MAX` are ignored (used to mask padding
    /// and prompt positions during fine-tuning).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of logit rows or a
    /// non-masked target is out of range.
    pub fn cross_entropy(&mut self, logits: TensorRef, targets: &[usize]) -> TensorRef {
        let (rows, vocab) = self.shape(logits);
        assert_eq!(targets.len(), rows, "targets length");
        let ld = &self.nodes[logits.0].data;
        let mut probs = vec![0.0; rows * vocab];
        let mut loss = 0.0;
        let mut counted = 0usize;
        for r in 0..rows {
            let row = &ld[r * vocab..(r + 1) * vocab];
            let prow = &mut probs[r * vocab..(r + 1) * vocab];
            prow.copy_from_slice(row);
            softmax_row(prow);
            let t = targets[r];
            if t == usize::MAX {
                continue;
            }
            assert!(t < vocab, "target {t} out of range {vocab}");
            loss -= (prow[t].max(1e-12)).ln();
            counted += 1;
        }
        let denom = counted.max(1) as f32;
        self.push(
            vec![loss / denom],
            1,
            1,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    /// Runs reverse-mode differentiation from `loss` (seed gradient 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar `(1, 1)` tensor.
    pub fn backward(&mut self, loss: TensorRef) {
        assert_eq!(self.shape(loss), (1, 1), "backward needs a scalar loss");
        self.nodes[loss.0].grad[0] = 1.0;
        for idx in (0..=loss.0).rev() {
            // Split the arena so we can mutate input grads while reading the
            // current node.
            let (before, rest) = self.nodes.split_at_mut(idx);
            let node = &mut rest[0];
            match &node.op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (m, n) = (node.rows, node.cols);
                    let k = before[a.0].cols;
                    let dout = std::mem::take(&mut node.grad);
                    // dA += dC @ B^T ; dB += A^T @ dC
                    {
                        let b_data = std::mem::take(&mut before[b.0].data);
                        matmul_a_bt_acc(&dout, &b_data, m, n, k, &mut before[a.0].grad);
                        before[b.0].data = b_data;
                    }
                    {
                        let a_data = std::mem::take(&mut before[a.0].data);
                        matmul_at_b_acc(&a_data, &dout, k, m, n, &mut before[b.0].grad);
                        before[a.0].data = a_data;
                    }
                    node.grad = dout;
                }
                Op::Add(a, b) => {
                    for (i, &g) in node.grad.iter().enumerate() {
                        before[a.0].grad[i] += g;
                        before[b.0].grad[i] += g;
                    }
                }
                Op::AddRowBias(a, bias) => {
                    let cols = node.cols;
                    for (i, &g) in node.grad.iter().enumerate() {
                        before[a.0].grad[i] += g;
                        before[bias.0].grad[i % cols] += g;
                    }
                }
                Op::Scale(a, factor) => {
                    let f = *factor;
                    for (i, &g) in node.grad.iter().enumerate() {
                        before[a.0].grad[i] += g * f;
                    }
                }
                Op::Gelu(a) => {
                    for (i, &g) in node.grad.iter().enumerate() {
                        before[a.0].grad[i] += g * gelu_grad(before[a.0].data[i]);
                    }
                }
                Op::LayerNorm {
                    x,
                    gain,
                    bias,
                    rstd,
                    normed,
                } => {
                    let (rows, cols) = (node.rows, node.cols);
                    let g = &before[gain.0].data;
                    for r in 0..rows {
                        let dout = &node.grad[r * cols..(r + 1) * cols];
                        let nrm = &normed[r * cols..(r + 1) * cols];
                        // dnormed = dout * gain
                        let mut mean_dn = 0.0;
                        let mut mean_dn_n = 0.0;
                        for c in 0..cols {
                            let dn = dout[c] * g[c];
                            mean_dn += dn;
                            mean_dn_n += dn * nrm[c];
                        }
                        mean_dn /= cols as f32;
                        mean_dn_n /= cols as f32;
                        let rs = rstd[r];
                        for c in 0..cols {
                            let dn = dout[c] * g[c];
                            before[x.0].grad[r * cols + c] +=
                                rs * (dn - mean_dn - nrm[c] * mean_dn_n);
                            before[gain.0].grad[c] += dout[c] * nrm[c];
                            before[bias.0].grad[c] += dout[c];
                        }
                    }
                }
                Op::Embedding { table, ids } => {
                    let dim = node.cols;
                    for (i, &id) in ids.iter().enumerate() {
                        let src = &node.grad[i * dim..(i + 1) * dim];
                        let dst = &mut before[table.0].grad[id * dim..(id + 1) * dim];
                        for (d, s) in dst.iter_mut().zip(src.iter()) {
                            *d += s;
                        }
                    }
                }
                Op::Attention {
                    q,
                    k,
                    v,
                    batch,
                    time,
                    heads,
                    att,
                } => {
                    let width = node.cols;
                    let hd = width / heads;
                    let scale = 1.0 / (hd as f32).sqrt();
                    let (batch, time, heads) = (*batch, *time, *heads);
                    // Read-only views into q,k,v forward data are needed while
                    // writing their grads, so take the buffers out first.
                    let qd = std::mem::take(&mut before[q.0].data);
                    let kd = std::mem::take(&mut before[k.0].data);
                    let vd = std::mem::take(&mut before[v.0].data);
                    {
                        let dout = &node.grad;
                        for b in 0..batch {
                            for h in 0..heads {
                                let att_base = (b * heads + h) * time * time;
                                for t in 0..time {
                                    let att_row = &att[att_base + t * time..][..time];
                                    let dout_row = &dout[(b * time + t) * width + h * hd..][..hd];
                                    // dAtt[t][t2] = dOut[t] . V[t2]; dV[t2] += att * dOut[t]
                                    let mut datt = vec![0.0; t + 1];
                                    for (t2, da) in datt.iter_mut().enumerate() {
                                        let v_row = &vd[(b * time + t2) * width + h * hd..][..hd];
                                        *da = dot(dout_row, v_row);
                                        let w = att_row[t2];
                                        if w != 0.0 {
                                            let dv = &mut before[v.0].grad
                                                [(b * time + t2) * width + h * hd..][..hd];
                                            for (dvv, &go) in dv.iter_mut().zip(dout_row.iter()) {
                                                *dvv += w * go;
                                            }
                                        }
                                    }
                                    // softmax backward: ds = att*(datt - sum(datt*att))
                                    let sum_da: f32 = datt
                                        .iter()
                                        .enumerate()
                                        .map(|(t2, da)| da * att_row[t2])
                                        .sum();
                                    for (t2, da) in datt.iter().enumerate() {
                                        let ds = att_row[t2] * (da - sum_da) * scale;
                                        if ds == 0.0 {
                                            continue;
                                        }
                                        let k_row = &kd[(b * time + t2) * width + h * hd..][..hd];
                                        let q_row = &qd[(b * time + t) * width + h * hd..][..hd];
                                        let dq = &mut before[q.0].grad
                                            [(b * time + t) * width + h * hd..][..hd];
                                        for (dqv, &kv) in dq.iter_mut().zip(k_row.iter()) {
                                            *dqv += ds * kv;
                                        }
                                        let dk = &mut before[k.0].grad
                                            [(b * time + t2) * width + h * hd..][..hd];
                                        for (dkv, &qv) in dk.iter_mut().zip(q_row.iter()) {
                                            *dkv += ds * qv;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    before[q.0].data = qd;
                    before[k.0].data = kd;
                    before[v.0].data = vd;
                }
                Op::CrossEntropy {
                    logits,
                    targets,
                    probs,
                } => {
                    let vocab = before[logits.0].cols;
                    let counted = targets.iter().filter(|&&t| t != usize::MAX).count();
                    let denom = counted.max(1) as f32;
                    let gout = node.grad[0];
                    for (r, &t) in targets.iter().enumerate() {
                        if t == usize::MAX {
                            continue;
                        }
                        let prow = &probs[r * vocab..(r + 1) * vocab];
                        let grow = &mut before[logits.0].grad[r * vocab..(r + 1) * vocab];
                        for (c, (gr, &p)) in grow.iter_mut().zip(prow.iter()).enumerate() {
                            let indicator = if c == t { 1.0 } else { 0.0 };
                            *gr += gout * (p - indicator) / denom;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `d loss / d leaf[i]`.
    fn finite_diff_check<F>(build: F, leaf_data: Vec<f32>, rows: usize, cols: usize)
    where
        F: Fn(&mut Tape, TensorRef) -> TensorRef,
    {
        // Analytic gradients.
        let mut tape = Tape::new();
        let leaf = tape.leaf(leaf_data.clone(), rows, cols);
        let loss = build(&mut tape, leaf);
        tape.backward(loss);
        let analytic: Vec<f32> = tape.grad(leaf).to_vec();

        // Numeric gradients.
        let h = 1e-2f32;
        for i in 0..leaf_data.len() {
            let mut plus = leaf_data.clone();
            plus[i] += h;
            let mut tp = Tape::new();
            let lp = tp.leaf(plus, rows, cols);
            let loss_p = build(&mut tp, lp);
            let fp = tp.data(loss_p)[0];

            let mut minus = leaf_data.clone();
            minus[i] -= h;
            let mut tm = Tape::new();
            let lm = tm.leaf(minus, rows, cols);
            let loss_m = build(&mut tm, lm);
            let fm = tm.data(loss_m)[0];

            let numeric = (fp - fm) / (2.0 * h);
            let a = analytic[i];
            let tol = 2e-2 * (1.0 + a.abs().max(numeric.abs()));
            assert!(
                (a - numeric).abs() < tol,
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn seeded_values(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = wisdom_prng::Prng::seed_from_u64(seed);
        (0..n).map(|_| rng.normal_f32(0.0, 0.8)).collect()
    }

    #[test]
    fn matmul_grad_via_cross_entropy() {
        let fixed = seeded_values(6, 1);
        finite_diff_check(
            move |tape, leaf| {
                let w = tape.leaf(fixed.clone(), 2, 3);
                let logits = tape.matmul(leaf, w);
                tape.cross_entropy(logits, &[1, 2])
            },
            seeded_values(4, 2),
            2,
            2,
        );
    }

    #[test]
    fn gelu_grad_check() {
        let fixed = seeded_values(6, 3);
        finite_diff_check(
            move |tape, leaf| {
                let act = tape.gelu(leaf);
                let w = tape.leaf(fixed.clone(), 3, 2);
                let logits = tape.matmul(act, w);
                tape.cross_entropy(logits, &[0, 1])
            },
            seeded_values(6, 4),
            2,
            3,
        );
    }

    #[test]
    fn layer_norm_grad_check_x() {
        finite_diff_check(
            |tape, leaf| {
                let gain = tape.leaf(vec![1.2, 0.8, 1.1, 0.9], 1, 4);
                let bias = tape.leaf(vec![0.1, -0.2, 0.0, 0.3], 1, 4);
                let ln = tape.layer_norm(leaf, gain, bias);
                tape.cross_entropy(ln, &[2, 0])
            },
            seeded_values(8, 5),
            2,
            4,
        );
    }

    #[test]
    fn layer_norm_grad_check_gain_bias() {
        let x = seeded_values(8, 6);
        finite_diff_check(
            move |tape, leaf_gain| {
                let xr = tape.leaf(x.clone(), 2, 4);
                let bias = tape.leaf(vec![0.0; 4], 1, 4);
                let ln = tape.layer_norm(xr, leaf_gain, bias);
                tape.cross_entropy(ln, &[1, 3])
            },
            vec![1.0, 1.1, 0.9, 1.05],
            1,
            4,
        );
    }

    #[test]
    fn add_and_bias_grad_check() {
        let fixed = seeded_values(6, 7);
        finite_diff_check(
            move |tape, leaf| {
                let other = tape.leaf(fixed.clone(), 2, 3);
                let sum = tape.add(leaf, other);
                let bias = tape.leaf(vec![0.3, -0.1, 0.2], 1, 3);
                let biased = tape.add_row_bias(sum, bias);
                tape.cross_entropy(biased, &[0, 2])
            },
            seeded_values(6, 8),
            2,
            3,
        );
    }

    #[test]
    fn scale_grad_check() {
        finite_diff_check(
            |tape, leaf| {
                let s = tape.scale(leaf, 2.5);
                tape.cross_entropy(s, &[1])
            },
            seeded_values(3, 9),
            1,
            3,
        );
    }

    #[test]
    fn embedding_grad_check() {
        finite_diff_check(
            |tape, leaf| {
                let gathered = tape.embedding(leaf, &[0, 2, 1, 2]);
                tape.cross_entropy(gathered, &[1, 0, 2, 2])
            },
            seeded_values(9, 10),
            3,
            3,
        );
    }

    #[test]
    fn attention_grad_check_q() {
        // batch=1, time=3, heads=1, head_dim=2
        let kv = seeded_values(6, 11);
        let vv = seeded_values(6, 12);
        let w = seeded_values(6, 13);
        finite_diff_check(
            move |tape, q| {
                let k = tape.leaf(kv.clone(), 3, 2);
                let v = tape.leaf(vv.clone(), 3, 2);
                let att = tape.causal_attention(q, k, v, 1, 3, 1);
                let wt = tape.leaf(w.clone(), 2, 3);
                let logits = tape.matmul(att, wt);
                tape.cross_entropy(logits, &[0, 1, 2])
            },
            seeded_values(6, 14),
            3,
            2,
        );
    }

    #[test]
    fn attention_grad_check_k() {
        let qv = seeded_values(6, 15);
        let vv = seeded_values(6, 16);
        let w = seeded_values(6, 17);
        finite_diff_check(
            move |tape, k| {
                let q = tape.leaf(qv.clone(), 3, 2);
                let v = tape.leaf(vv.clone(), 3, 2);
                let att = tape.causal_attention(q, k, v, 1, 3, 1);
                let wt = tape.leaf(w.clone(), 2, 3);
                let logits = tape.matmul(att, wt);
                tape.cross_entropy(logits, &[2, 0, 1])
            },
            seeded_values(6, 18),
            3,
            2,
        );
    }

    #[test]
    fn attention_grad_check_v_multihead() {
        let qv = seeded_values(8, 19);
        let kv = seeded_values(8, 20);
        let w = seeded_values(12, 21);
        finite_diff_check(
            move |tape, v| {
                let q = tape.leaf(qv.clone(), 2, 4);
                let k = tape.leaf(kv.clone(), 2, 4);
                // batch=1, time=2, heads=2, head_dim=2
                let att = tape.causal_attention(q, k, v, 1, 2, 2);
                let wt = tape.leaf(w.clone(), 4, 3);
                let logits = tape.matmul(att, wt);
                tape.cross_entropy(logits, &[1, 0])
            },
            seeded_values(8, 22),
            2,
            4,
        );
    }

    #[test]
    fn attention_multibatch_grad_check() {
        let kv = seeded_values(8, 23);
        let vv = seeded_values(8, 24);
        let w = seeded_values(6, 25);
        finite_diff_check(
            move |tape, q| {
                let k = tape.leaf(kv.clone(), 4, 2);
                let v = tape.leaf(vv.clone(), 4, 2);
                // batch=2, time=2, heads=1
                let att = tape.causal_attention(q, k, v, 2, 2, 1);
                let wt = tape.leaf(w.clone(), 2, 3);
                let logits = tape.matmul(att, wt);
                tape.cross_entropy(logits, &[0, 1, 2, 0])
            },
            seeded_values(8, 26),
            4,
            2,
        );
    }

    #[test]
    fn causal_mask_blocks_future() {
        // With distinct v rows, output at t=0 must depend only on v[0].
        let mut tape = Tape::new();
        let q = tape.leaf(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 3, 2);
        let k = tape.leaf(vec![0.5, 0.1, 0.2, 0.9, 0.3, 0.3], 3, 2);
        let v = tape.leaf(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let out = tape.causal_attention(q, k, v, 1, 3, 1);
        let d = tape.data(out);
        assert!((d[0] - 1.0).abs() < 1e-6);
        assert!((d[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_masked_targets_ignored() {
        let mut tape = Tape::new();
        let logits = tape.leaf(vec![2.0, 0.0, 0.0, 2.0, 1.0, 1.0], 3, 2);
        let loss_masked = tape.cross_entropy(logits, &[0, usize::MAX, usize::MAX]);
        let l1 = tape.data(loss_masked)[0];

        let mut tape2 = Tape::new();
        let logits2 = tape2.leaf(vec![2.0, 0.0], 1, 2);
        let loss_single = tape2.cross_entropy(logits2, &[0]);
        let l2 = tape2.data(loss_single)[0];
        assert!((l1 - l2).abs() < 1e-6, "{l1} vs {l2}");
    }

    #[test]
    fn cross_entropy_perfect_prediction_low_loss() {
        let mut tape = Tape::new();
        let logits = tape.leaf(vec![20.0, 0.0, 0.0, 20.0], 2, 2);
        let loss = tape.cross_entropy(logits, &[0, 1]);
        assert!(tape.data(loss)[0] < 1e-3);
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // One linear layer trained by hand for a few steps.
        let mut w = seeded_values(9, 27);
        let x = seeded_values(6, 28);
        let targets = [0usize, 2];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let xw = tape.leaf(x.clone(), 2, 3);
            let wt = tape.leaf(w.clone(), 3, 3);
            let logits = tape.matmul(xw, wt);
            let loss = tape.cross_entropy(logits, &targets);
            let l = tape.data(loss)[0];
            assert!(l <= last + 1e-4, "loss must not increase: {l} vs {last}");
            last = l;
            tape.backward(loss);
            let g = tape.grad(wt);
            for (wi, gi) in w.iter_mut().zip(g.iter()) {
                *wi -= 0.5 * gi;
            }
        }
        assert!(last < 0.3, "final loss {last}");
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let mut tape = Tape::new();
        let a = tape.leaf(vec![0.0; 4], 2, 2);
        let b = tape.leaf(vec![0.0; 6], 3, 2);
        tape.matmul(a, b);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(vec![0.0; 4], 2, 2);
        tape.backward(a);
    }
}
