//! A compact CPU autodiff engine for training the Wisdom language models.
//!
//! The paper trains CodeGen-architecture transformers on GPUs; this crate is
//! the offline substitute: a tape-based reverse-mode automatic
//! differentiation engine over row-major `f32` matrices with exactly the op
//! set a decoder-only transformer needs, plus the Adam optimizer and the raw
//! [`kernels`] reused by the fast KV-cache inference path.
//!
//! Gradient correctness is enforced by finite-difference tests on every op.
//!
//! # Examples
//!
//! Train a linear softmax classifier for a few steps:
//!
//! ```
//! use wisdom_prng::Prng;
//! use wisdom_tensor::{Adam, AdamConfig, ParamTensor, Tape};
//!
//! let mut rng = Prng::seed_from_u64(0);
//! let mut w = ParamTensor::randn(3, 2, 0.1, &mut rng);
//! let mut adam = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
//! for _ in 0..20 {
//!     let mut tape = Tape::new();
//!     let x = tape.leaf(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], 2, 3);
//!     let wt = tape.leaf(w.data.clone(), 3, 2);
//!     let logits = tape.matmul(x, wt);
//!     let loss = tape.cross_entropy(logits, &[0, 1]);
//!     tape.backward(loss);
//!     adam.begin_step();
//!     adam.update(&mut w, tape.grad(wt));
//! }
//! ```

pub mod kernels;
mod optim;
mod tape;

pub use kernels::{QuantMatrix, Q8_BLOCK};
pub use optim::{clip_scale, global_grad_norm, Adam, AdamConfig, ParamTensor};
pub use tape::{Tape, TensorRef};
