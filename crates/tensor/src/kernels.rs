//! Low-level f32 kernels shared by the autograd tape (training) and the
//! KV-cache inference path in `wisdom-model`.
//!
//! All matrices are dense row-major. The dense kernels are blocked: the
//! right-hand side is packed into contiguous column panels so the inner
//! loop streams one panel that stays cache-resident across all output
//! rows. Above [`PAR_MIN_MACS`] multiply-accumulates, output rows are
//! partitioned across scoped threads.
//!
//! Determinism contract: for every output element the k-dimension is
//! summed in index order, and threading only ever partitions *rows*, so
//! results are bit-identical across panel widths and thread counts
//! (including the single-threaded path). `tests/determinism.rs` and the
//! thread-agreement tests below rely on this.

/// Column-panel width for the blocked kernels.
const PANEL_N: usize = 64;

/// Multiply-accumulate budget per worker thread: a kernel call gets one
/// thread per this many MACs, so small products never pay spawn costs and
/// large ones saturate the machine.
pub const PAR_MACS_PER_THREAD: usize = 1 << 19;

/// Upper bound on worker threads for one kernel call.
const PAR_MAX_THREADS: usize = 8;

/// Number of threads [`matmul_acc`] and friends would use for an
/// `m`×`k` @ `k`×`n` product on this machine.
pub fn threads_for(m: usize, k: usize, n: usize) -> usize {
    let macs = m.saturating_mul(k).saturating_mul(n);
    let by_work = macs / PAR_MACS_PER_THREAD;
    if m < 2 || by_work < 2 {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    by_work.min(hw).min(PAR_MAX_THREADS).min(m)
}

/// Runs `body(first_row, row_count, out_rows)` over a deterministic
/// partition of `m` output rows into at most `threads` contiguous chunks.
///
/// The chunking depends only on `m` and `threads`, never on scheduling,
/// and each row is produced by exactly one invocation — so any `threads`
/// value yields bit-identical `out`.
fn for_each_row_chunk<F>(m: usize, n: usize, out: &mut [f32], threads: usize, body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Send + Sync,
{
    if m == 0 || n == 0 {
        return;
    }
    if threads <= 1 {
        body(0, m, out);
        return;
    }
    let chunk = m.div_ceil(threads);
    crossbeam::scope(|scope| {
        // The caller thread takes the first chunk itself, so a `threads`-way
        // split only spawns `threads - 1` workers.
        let mut chunks = out.chunks_mut(chunk * n).enumerate();
        let first = chunks.next();
        for (ti, out_chunk) in chunks {
            let body = &body;
            scope.spawn(move |_| body(ti * chunk, out_chunk.len() / n, out_chunk));
        }
        if let Some((ti, out_chunk)) = first {
            body(ti * chunk, out_chunk.len() / n, out_chunk);
        }
    })
    .expect("kernel thread scope");
}

/// Packs `b` (`k`×`n` row-major) into contiguous column panels of width
/// [`PANEL_N`]: panel-major, then row-major inside each panel.
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed = Vec::with_capacity(k * n);
    for j0 in (0..n).step_by(PANEL_N) {
        let nb = PANEL_N.min(n - j0);
        for p in 0..k {
            packed.extend_from_slice(&b[p * n + j0..p * n + j0 + nb]);
        }
    }
    packed
}

/// Register-tile height (output rows per micro-kernel invocation).
const MR: usize = 4;
/// Register-tile width (output columns per micro-kernel invocation).
const NR: usize = 8;

/// Blocked core: accumulates `rows` output rows against pre-packed
/// panels. `a_rows` holds exactly `rows * k` values.
///
/// The hot path is an `MR`×`NR` register-tiled micro-kernel: each output
/// element is loaded into a register once, accumulated over the whole `k`
/// dimension, and stored once — so per-element summation order is exactly
/// the classic axpy order `((init + t₀) + t₁) + …`, bit-identical to the
/// remainder path and to a 1×n matvec.
fn matmul_acc_packed(
    a_rows: &[f32],
    packed: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let mut panel_off = 0;
    for j0 in (0..n).step_by(PANEL_N) {
        let nb = PANEL_N.min(n - j0);
        let panel = &packed[panel_off..panel_off + k * nb];
        panel_off += k * nb;
        gebp_panel(a_rows, panel, rows, k, n, j0, nb, out);
    }
}

/// The `MR`×`NR` register-tiled micro-kernel over one pre-packed column
/// panel. Shared verbatim by the f32 path and the quantized path (which
/// dequantizes its int8 panel into the same layout first), so both produce
/// the identical per-element float-op sequence.
#[allow(clippy::too_many_arguments)]
fn gebp_panel(
    a_rows: &[f32],
    panel: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    j0: usize,
    nb: usize,
    out: &mut [f32],
) {
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        let mut j = 0;
        while j < nb {
            let nr = NR.min(nb - j);
            if mr == MR && nr == NR {
                let mut acc = [[0.0f32; NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let o = (i + r) * n + j0 + j;
                    acc_row.copy_from_slice(&out[o..o + NR]);
                }
                // Iterator-driven so the per-`p` a-loads and panel
                // segments compile without repeated index arithmetic
                // or bounds checks.
                let a0 = a_rows[i * k..(i + 1) * k].iter();
                let a1 = a_rows[(i + 1) * k..(i + 2) * k].iter();
                let a2 = a_rows[(i + 2) * k..(i + 3) * k].iter();
                let a3 = a_rows[(i + 3) * k..(i + 4) * k].iter();
                for ((((b_row, &a0p), &a1p), &a2p), &a3p) in
                    panel.chunks_exact(nb).zip(a0).zip(a1).zip(a2).zip(a3)
                {
                    let b_seg: &[f32; NR] =
                        b_row[j..j + NR].try_into().expect("NR-wide panel segment");
                    let a_p = [a0p, a1p, a2p, a3p];
                    for (acc_row, &a_rp) in acc.iter_mut().zip(a_p.iter()) {
                        for (o, &bv) in acc_row.iter_mut().zip(b_seg.iter()) {
                            *o += a_rp * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let o = (i + r) * n + j0 + j;
                    out[o..o + NR].copy_from_slice(acc_row);
                }
            } else {
                // Remainder tile: same per-element accumulation order.
                for r in 0..mr {
                    let a_row = &a_rows[(i + r) * k..(i + r + 1) * k];
                    for c in 0..nr {
                        let mut acc = out[(i + r) * n + j0 + j + c];
                        for (p, &a_rp) in a_row.iter().enumerate() {
                            acc += a_rp * panel[p * nb + j + c];
                        }
                        out[(i + r) * n + j0 + j + c] = acc;
                    }
                }
            }
            j += nr;
        }
        i += mr;
    }
}

/// `out += a @ b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n`.
///
/// Dense path: no zero-skipping (use [`matmul_acc_sparse`] when `a` is
/// known to be mostly zeros), blocked RHS packing, and automatic row
/// threading above [`PAR_MIN_MACS`].
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with the dimensions.
pub fn matmul_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_acc_threads(a, b, m, k, n, out, threads_for(m, k, n));
}

/// [`matmul_acc`] with an explicit thread count. Results are bit-identical
/// for every `threads` value; exposed so tests and benches can pin it.
pub fn matmul_acc_threads(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let packed = pack_b_panels(b, k, n);
    for_each_row_chunk(m, n, out, threads.max(1).min(m), |r0, rows, out_rows| {
        matmul_acc_packed(&a[r0 * k..(r0 + rows) * k], &packed, rows, k, n, out_rows);
    });
}

/// `out += a @ b`, skipping zero entries of `a`.
///
/// The former default kernel, kept for operands that are structurally
/// sparse (one-hot rows, masked gradients): the branch is a win there and
/// a ~15% tax on dense inputs.
pub fn matmul_acc_sparse(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * bv;
            }
        }
    }
}

/// `out = a @ b` (overwrites `out`).
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    out.fill(0.0);
    matmul_acc(a, b, m, k, n, out);
}

/// `out += aᵀ @ b` where `a` is `k×m` (so `aᵀ` is `m×k`), `b` is `k×n`.
///
/// Written per-output-row with the `k` dimension summed in index order,
/// so it is bit-identical to the historical `p`-outer formulation and
/// safe to partition by rows.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = threads_for(m, k, n);
    for_each_row_chunk(m, n, out, threads, |r0, rows, out_rows| {
        for i in 0..rows {
            let col = r0 + i;
            let out_row = &mut out_rows[i * n..(i + 1) * n];
            for p in 0..k {
                let a_pi = a[p * m + col];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_pi * bv;
                }
            }
        }
    });
}

/// `out += a @ bᵀ` where `a` is `m×k`, `b` is `n×k` (so `bᵀ` is `k×n`).
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let threads = threads_for(m, k, n);
    for_each_row_chunk(m, n, out, threads, |r0, rows, out_rows| {
        for i in 0..rows {
            let a_row = &a[(r0 + i) * k..(r0 + i + 1) * k];
            let out_row = &mut out_rows[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                *o += dot(a_row, b_row);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Weight-only per-block int8 quantization: the packed matrix representation
// and the quantized GEBP micro-kernel family beside the f32 blocked kernels
// above. The fast path is bit-identical to "dequantize the whole matrix and
// run the f32 kernels" — see the determinism note on [`QuantMatrix`].
// ---------------------------------------------------------------------------

/// Default k-dimension quantization block: one `(scale, offset)` pair per
/// [`Q8_BLOCK`] consecutive rows of each column. Equal to [`PANEL_N`] so a
/// block's parameter row covers exactly one packed panel stripe, and a
/// multiple of the `MR`×`NR` register tile's k-unrolling, so the micro-kernel
/// hoists the per-column parameters once per block, never mid-tile.
pub const Q8_BLOCK: usize = 64;

/// Dequantizes one stored value. This expression — `q·scale + off`, one
/// f32 multiply-add in this exact order — is the *only* way a quantized
/// weight is ever turned back into an f32, in both [`QuantMatrix::dequantize`]
/// and the fast kernels, which is what makes the fast path bit-identical to
/// running the f32 kernels over the dequantized matrix.
#[inline(always)]
fn dq8(q: i8, scale: f32, off: f32) -> f32 {
    q as f32 * scale + off
}

/// A `k`×`n` weight matrix quantized to int8 with per-block f32 scale and
/// zero-point, pre-packed into the same [`PANEL_N`]-wide column panels the
/// f32 blocked kernels pack on every call.
///
/// Quantization is affine and per `(k-block, column)`: for each run of
/// [`Self::block`] consecutive k-rows within one column, values are mapped
/// to `q ∈ [-128, 127]` such that `w ≈ q·scale + off`, with
/// `scale = (max−min)/255` and `off = min + 128·scale` (the zero-point in
/// dequant-offset form). A constant block gets `scale = 0` and is
/// reproduced exactly by `off`.
///
/// # Determinism
///
/// [`matmul_q8_acc`] and friends accumulate every output element over the
/// k dimension in index order — the same per-element order as the f32
/// blocked kernels — and dequantize each weight with the same single
/// expression [`QuantMatrix::dequantize`] uses. Fast-path results are
/// therefore bit-identical to `matmul_acc(a, &qm.dequantize(), …)`, which
/// is what lets a dequantize-on-load model serve as the agreement oracle
/// for the quantized model.
#[derive(Debug, Clone)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    /// Panel-packed int8 values: panel-major, row-major inside each panel
    /// (the layout [`pack_b_panels`] produces for f32).
    q: Vec<i8>,
    /// Per-(block, column) scale, row-major `n_blocks × cols`.
    scales: Vec<f32>,
    /// Per-(block, column) dequantization offset, row-major `n_blocks × cols`.
    offs: Vec<f32>,
}

impl QuantMatrix {
    /// Quantizes a row-major `k`×`n` f32 matrix with the default
    /// [`Q8_BLOCK`] block size.
    pub fn quantize(w: &[f32], k: usize, n: usize) -> QuantMatrix {
        Self::quantize_blocked(w, k, n, Q8_BLOCK)
    }

    /// [`Self::quantize`] with an explicit k-block size (tests sweep this;
    /// serving uses the default).
    ///
    /// # Panics
    ///
    /// Panics if `block == 0` or `w.len() != k * n`.
    pub fn quantize_blocked(w: &[f32], k: usize, n: usize, block: usize) -> QuantMatrix {
        assert!(block > 0, "quantization block must be nonzero");
        assert_eq!(w.len(), k * n, "weight slice length");
        let nblocks = if k == 0 { 0 } else { k.div_ceil(block) };
        let mut mins = vec![0.0f32; nblocks * n];
        let mut scales = vec![0.0f32; nblocks * n];
        let mut offs = vec![0.0f32; nblocks * n];
        for b in 0..nblocks {
            let p0 = b * block;
            let p1 = k.min(p0 + block);
            for j in 0..n {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for p in p0..p1 {
                    let v = w[p * n + j];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                // (hi-lo)/255 can flush to 0 for near-constant blocks; the
                // scale == 0 path then reproduces `lo` exactly via the offset.
                let scale = (hi - lo) / 255.0;
                mins[b * n + j] = lo;
                scales[b * n + j] = scale;
                offs[b * n + j] = lo + 128.0 * scale;
            }
        }
        let mut q = Vec::with_capacity(k * n);
        for j0 in (0..n).step_by(PANEL_N) {
            let nb = PANEL_N.min(n - j0);
            for p in 0..k {
                let b = p / block;
                for j in j0..j0 + nb {
                    let scale = scales[b * n + j];
                    let qv = if scale > 0.0 {
                        // Unsigned level 0..=255, stored shifted to i8.
                        // Saturating float→int casts make stray rounding
                        // past the end of the range harmless.
                        let level = ((w[p * n + j] - mins[b * n + j]) / scale).round();
                        (level as i32 - 128).clamp(-128, 127) as i8
                    } else {
                        -128
                    };
                    q.push(qv);
                }
            }
        }
        QuantMatrix {
            rows: k,
            cols: n,
            block,
            q,
            scales,
            offs,
        }
    }

    /// Logical row count (`k`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count (`n`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The k-dimension block size one `(scale, offset)` pair covers.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Bytes the packed representation occupies (int8 values plus the
    /// per-block f32 parameters).
    pub fn packed_bytes(&self) -> usize {
        self.q.len() + (self.scales.len() + self.offs.len()) * std::mem::size_of::<f32>()
    }

    /// Bytes the same matrix occupies in f32.
    pub fn f32_bytes(&self) -> usize {
        self.rows * self.cols * std::mem::size_of::<f32>()
    }

    /// Scale of the block covering `(row, col)` — the per-block quantization
    /// step; the round-trip error of any element in the block is at most
    /// half of it (plus f32 rounding).
    pub fn scale_at(&self, row: usize, col: usize) -> f32 {
        self.scales[(row / self.block) * self.cols + col]
    }

    /// Expands back to a row-major `k`×`n` f32 matrix — the dequantize-on-
    /// load oracle. Running the f32 kernels over this output is bit-identical
    /// to running [`matmul_q8_acc`] over `self`.
    pub fn dequantize(&self) -> Vec<f32> {
        let (k, n) = (self.rows, self.cols);
        let mut out = vec![0.0f32; k * n];
        let mut panel_off = 0;
        for j0 in (0..n).step_by(PANEL_N) {
            let nb = PANEL_N.min(n - j0);
            for p in 0..k {
                let b = p / self.block;
                for (jj, &qv) in self.q[panel_off + p * nb..panel_off + (p + 1) * nb]
                    .iter()
                    .enumerate()
                {
                    let j = j0 + jj;
                    out[p * n + j] = dq8(qv, self.scales[b * n + j], self.offs[b * n + j]);
                }
            }
            panel_off += k * nb;
        }
        out
    }
}

/// `out += a @ dequant(qb)` where `a` is `m×k` and `qb` is a packed
/// `k`×`n` [`QuantMatrix`]. Bit-identical to
/// `matmul_acc(a, &qb.dequantize(), m, k, n, out)` at a quarter of the
/// weight traffic, with no per-call packing (the panels were packed at
/// quantization time).
pub fn matmul_q8_acc(a: &[f32], qb: &QuantMatrix, m: usize, out: &mut [f32]) {
    matmul_q8_acc_threads(a, qb, m, out, threads_for(m, qb.rows, qb.cols));
}

/// [`matmul_q8_acc`] with an explicit thread count; bit-identical for every
/// `threads` value (threading only partitions output rows).
pub fn matmul_q8_acc_threads(
    a: &[f32],
    qb: &QuantMatrix,
    m: usize,
    out: &mut [f32],
    threads: usize,
) {
    let (k, n) = (qb.rows, qb.cols);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for_each_row_chunk(m, n, out, threads.max(1).min(m), |r0, rows, out_rows| {
        matmul_q8_acc_packed(&a[r0 * k..(r0 + rows) * k], qb, rows, out_rows);
    });
}

/// `out = a @ dequant(qb)` (overwrites `out`). Counterpart of [`matmul`].
pub fn matmul_q8(a: &[f32], qb: &QuantMatrix, m: usize, out: &mut [f32]) {
    out.fill(0.0);
    matmul_q8_acc(a, qb, m, out);
}

/// `out += x (1×k) @ dequant(qb)`, skipping zero entries of `x` — the
/// quantized counterpart of the solo decode step's zero-skipping matvec.
/// Skipped terms and accumulation order match exactly, so it is
/// bit-identical to that matvec over `qb.dequantize()`.
pub fn matvec_q8_acc(x: &[f32], qb: &QuantMatrix, out: &mut [f32]) {
    debug_assert_eq!(x.len(), qb.rows);
    debug_assert_eq!(out.len(), qb.cols);
    matvec_q8_row(x, qb, out, true);
}

/// Blocked core over the pre-packed panels: the quantized counterpart of
/// [`matmul_acc_packed`]. Each int8 panel is dequantized once via [`dq8`]
/// into an f32 scratch panel (amortized over every `a` row, where the old
/// in-register scheme re-dequantized per `MR`-row pass), then the shared
/// [`gebp_panel`] micro-kernel runs over it — so the float-op sequence per
/// output element is literally the f32 kernel's over dequantized weights,
/// which is the bit-identity contract.
fn matmul_q8_acc_packed(a_rows: &[f32], qb: &QuantMatrix, rows: usize, out: &mut [f32]) {
    if rows == 1 {
        // Single-row products (solo decode's LM head) skip the tile loop:
        // one pass per panel, columns innermost. Per-element order is
        // unchanged — each output element still sums over p in index order.
        matvec_q8_row(a_rows, qb, out, false);
        return;
    }
    let (k, n) = (qb.rows, qb.cols);
    let mut scratch = vec![0.0f32; k * PANEL_N.min(n)];
    let mut panel_off = 0;
    for j0 in (0..n).step_by(PANEL_N) {
        let nb = PANEL_N.min(n - j0);
        let panel = &qb.q[panel_off..panel_off + k * nb];
        panel_off += k * nb;
        let fpanel = &mut scratch[..k * nb];
        dequant_panel_into(qb, panel, j0, nb, fpanel);
        gebp_panel(a_rows, fpanel, rows, k, n, j0, nb, out);
    }
}

/// Dequantizes one packed int8 column panel into the f32 panel layout
/// [`gebp_panel`] consumes: `scratch[p * nb + c] = dq8(panel[p * nb + c])`
/// with the block's `(scale, offset)` row applied. Values are exactly those
/// of [`QuantMatrix::dequantize`] for the same elements.
fn dequant_panel_into(qb: &QuantMatrix, panel: &[i8], j0: usize, nb: usize, scratch: &mut [f32]) {
    let (k, n, qblock) = (qb.rows, qb.cols, qb.block);
    debug_assert_eq!(panel.len(), k * nb);
    debug_assert_eq!(scratch.len(), k * nb);
    #[cfg(target_arch = "x86_64")]
    if nb.is_multiple_of(16) && std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: avx512f is present (checked above); the callee asserts
        // every slice bound its raw-pointer reads rely on.
        unsafe { dequant_panel_avx512(qb, panel, j0, nb, scratch) };
        return;
    }
    let mut p0 = 0;
    let mut b = 0;
    while p0 < k {
        let p1 = k.min(p0 + qblock);
        let s = &qb.scales[b * n + j0..b * n + j0 + nb];
        let ofs = &qb.offs[b * n + j0..b * n + j0 + nb];
        for p in p0..p1 {
            let q_row = &panel[p * nb..(p + 1) * nb];
            let dst = &mut scratch[p * nb..(p + 1) * nb];
            for ((d, &qv), (&sv, &ov)) in dst.iter_mut().zip(q_row).zip(s.iter().zip(ofs.iter())) {
                *d = dq8(qv, sv, ov);
            }
        }
        p0 = p1;
        b += 1;
    }
}

/// AVX-512 body of [`dequant_panel_into`]: 16 lanes of the identical
/// sign-extend / convert / unfused `q*s`, `+o` chain as scalar [`dq8`], so
/// every produced value is bit-identical to the scalar path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dequant_panel_avx512(
    qb: &QuantMatrix,
    panel: &[i8],
    j0: usize,
    nb: usize,
    scratch: &mut [f32],
) {
    use std::arch::x86_64::*;
    let (k, n, qblock) = (qb.rows, qb.cols, qb.block);
    // These asserts bound every raw-pointer read/write below.
    assert!(nb.is_multiple_of(16));
    assert_eq!(panel.len(), k * nb);
    assert_eq!(scratch.len(), k * nb);
    let blocks = k.div_ceil(qblock.max(1));
    assert!(blocks > 0 && qb.scales.len() >= (blocks - 1) * n + j0 + nb);
    assert!(qb.offs.len() >= (blocks - 1) * n + j0 + nb);
    let mut p0 = 0;
    let mut b = 0;
    while p0 < k {
        let p1 = k.min(p0 + qblock);
        let s_base = qb.scales.as_ptr().add(b * n + j0);
        let o_base = qb.offs.as_ptr().add(b * n + j0);
        for p in p0..p1 {
            let q_base = panel.as_ptr().add(p * nb);
            let d_base = scratch.as_mut_ptr().add(p * nb);
            let mut c = 0;
            while c < nb {
                let qi = _mm_loadu_si128(q_base.add(c) as *const __m128i);
                let qf = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(qi));
                let s = _mm512_loadu_ps(s_base.add(c));
                let o = _mm512_loadu_ps(o_base.add(c));
                let w = _mm512_add_ps(_mm512_mul_ps(qf, s), o);
                _mm512_storeu_ps(d_base.add(c), w);
                c += 16;
            }
        }
        p0 = p1;
        b += 1;
    }
}

/// Single-row kernel over the packed panels, columns innermost (one pass
/// over the weights). With `skip`, zero `x` entries contribute nothing —
/// term-for-term the solo step's sparse matvec; without, every term is
/// added — term-for-term the dense kernels' order.
fn matvec_q8_row(x: &[f32], qb: &QuantMatrix, out: &mut [f32], skip: bool) {
    let (k, n, qblock) = (qb.rows, qb.cols, qb.block);
    if k == 0 || n == 0 {
        return;
    }
    let mut panel_off = 0;
    for j0 in (0..n).step_by(PANEL_N) {
        let nb = PANEL_N.min(n - j0);
        let panel = &qb.q[panel_off..panel_off + k * nb];
        panel_off += k * nb;
        let out_seg = &mut out[j0..j0 + nb];
        // Fixed-width column strips: a strip's accumulators plus its hoisted
        // per-block (scale, offset) rows are small constant-size arrays, so
        // they live in vector registers across the whole k loop instead of
        // round-tripping through `out` on every k-row. Each strip sums its
        // output elements over p in index order — the identical float-op
        // sequence per element as a single columns-innermost pass.
        let mut jj = 0;
        while nb - jj >= 64 {
            matvec_q8_strip::<64>(x, panel, nb, jj, qb, j0, skip, &mut out_seg[jj..jj + 64]);
            jj += 64;
        }
        if nb - jj >= 32 {
            matvec_q8_strip::<32>(x, panel, nb, jj, qb, j0, skip, &mut out_seg[jj..jj + 32]);
            jj += 32;
        }
        if nb - jj >= 16 {
            matvec_q8_strip::<16>(x, panel, nb, jj, qb, j0, skip, &mut out_seg[jj..jj + 16]);
            jj += 16;
        }
        if nb - jj >= 8 {
            matvec_q8_strip::<8>(x, panel, nb, jj, qb, j0, skip, &mut out_seg[jj..jj + 8]);
            jj += 8;
        }
        if jj < nb {
            // Sub-8-column tail: generic-width loop, same per-element order.
            let tail = &mut out_seg[jj..];
            let mut p0 = 0;
            let mut b = 0;
            while p0 < k {
                let p1 = k.min(p0 + qblock);
                let s = &qb.scales[b * n + j0 + jj..b * n + j0 + nb];
                let ofs = &qb.offs[b * n + j0 + jj..b * n + j0 + nb];
                for p in p0..p1 {
                    let xv = x[p];
                    if skip && xv == 0.0 {
                        continue;
                    }
                    let q_row = &panel[p * nb + jj..(p + 1) * nb];
                    for ((o, &qv), (&sv, &ov)) in
                        tail.iter_mut().zip(q_row).zip(s.iter().zip(ofs.iter()))
                    {
                        *o += xv * dq8(qv, sv, ov);
                    }
                }
                p0 = p1;
                b += 1;
            }
        }
    }
}

/// One `W`-column strip of [`matvec_q8_row`]: `out[c] += Σ_p x[p] *
/// dq8(panel[p][jj + c])` with `p` ascending, zero `x` terms skipped when
/// `skip` is set. `W` is a compile-time constant so `acc`, `s`, and `o` are
/// register-resident arrays and the dequant + multiply-accumulate body
/// vectorizes without touching memory for accumulators.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn matvec_q8_strip<const W: usize>(
    x: &[f32],
    panel: &[i8],
    nb: usize,
    jj: usize,
    qb: &QuantMatrix,
    j0: usize,
    skip: bool,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if W.is_multiple_of(16) && W <= 64 && std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: avx512f is present (checked above); the callee asserts
        // every slice bound its raw-pointer reads rely on.
        unsafe { matvec_q8_strip_avx512::<W>(x, panel, nb, jj, qb, j0, skip, out) };
        return;
    }
    let (k, n, qblock) = (qb.rows, qb.cols, qb.block);
    debug_assert_eq!(out.len(), W);
    let mut acc = [0.0f32; W];
    acc.copy_from_slice(out);
    let mut p0 = 0;
    let mut b = 0;
    while p0 < k {
        let p1 = k.min(p0 + qblock);
        let s: &[f32; W] = qb.scales[b * n + j0 + jj..][..W]
            .try_into()
            .expect("strip-wide scale segment");
        let o: &[f32; W] = qb.offs[b * n + j0 + jj..][..W]
            .try_into()
            .expect("strip-wide offset segment");
        for p in p0..p1 {
            let xv = x[p];
            if skip && xv == 0.0 {
                continue;
            }
            let q_row: &[i8; W] = panel[p * nb + jj..][..W]
                .try_into()
                .expect("strip-wide q row");
            for c in 0..W {
                acc[c] += xv * dq8(q_row[c], s[c], o[c]);
            }
        }
        p0 = p1;
        b += 1;
    }
    out.copy_from_slice(&acc);
}

/// Explicit AVX-512 body of [`matvec_q8_strip`], selected at runtime. Each
/// 16-lane group performs exactly the scalar strip's per-element operation
/// sequence — sign-extend (`vpmovsxbd`), convert (`vcvtdq2ps`), then the
/// unfused `q*s`, `+o`, `x*w`, `acc+` multiply/add pairs — so every lane is
/// the same IEEE op chain as the scalar path and the result is bit-identical
/// to it (and therefore to the dequantize-on-load oracle). No FMA is used:
/// fusing would change rounding versus the oracle's separate mul and add.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn matvec_q8_strip_avx512<const W: usize>(
    x: &[f32],
    panel: &[i8],
    nb: usize,
    jj: usize,
    qb: &QuantMatrix,
    j0: usize,
    skip: bool,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let (k, n, qblock) = (qb.rows, qb.cols, qb.block);
    let lanes = W / 16;
    // These asserts bound every raw-pointer read/write below.
    assert!(
        W.is_multiple_of(16) && lanes <= 4,
        "strip width must be 16/32/48/64"
    );
    assert_eq!(out.len(), W);
    assert!(x.len() >= k);
    assert!(jj + W <= nb);
    assert!(panel.len() >= k * nb);
    let blocks = k.div_ceil(qblock.max(1));
    assert!(blocks > 0 && qb.scales.len() >= (blocks - 1) * n + j0 + jj + W);
    assert!(qb.offs.len() >= (blocks - 1) * n + j0 + jj + W);

    let mut acc = [_mm512_setzero_ps(); 4];
    for v in 0..lanes {
        acc[v] = _mm512_loadu_ps(out.as_ptr().add(v * 16));
    }
    let mut p0 = 0;
    let mut b = 0;
    while p0 < k {
        let p1 = k.min(p0 + qblock);
        let s_base = qb.scales.as_ptr().add(b * n + j0 + jj);
        let o_base = qb.offs.as_ptr().add(b * n + j0 + jj);
        let mut s = [_mm512_setzero_ps(); 4];
        let mut o = [_mm512_setzero_ps(); 4];
        for v in 0..lanes {
            s[v] = _mm512_loadu_ps(s_base.add(v * 16));
            o[v] = _mm512_loadu_ps(o_base.add(v * 16));
        }
        for p in p0..p1 {
            let xv = *x.get_unchecked(p);
            if skip && xv == 0.0 {
                continue;
            }
            let xs = _mm512_set1_ps(xv);
            let q_base = panel.as_ptr().add(p * nb + jj);
            for v in 0..lanes {
                let qi = _mm_loadu_si128(q_base.add(v * 16) as *const __m128i);
                let qf = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(qi));
                let w = _mm512_add_ps(_mm512_mul_ps(qf, s[v]), o[v]);
                acc[v] = _mm512_add_ps(acc[v], _mm512_mul_ps(xs, w));
            }
        }
        p0 = p1;
        b += 1;
    }
    for v in 0..lanes {
        _mm512_storeu_ps(out.as_mut_ptr().add(v * 16), acc[v]);
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Fast `exp` via the standard Cephes-style range reduction
/// (`x = n·ln2 + r`, degree-5 polynomial on `r`, exponent-bit scaling by
/// `2^n`), accurate to ~1e-6 relative. Pure f32 arithmetic: vectorizes and
/// stays bit-reproducible, unlike libm's `expf`, which dominated softmax.
fn exp_approx(x: f32) -> f32 {
    // Outside this range f32 exp overflows / flushes to zero anyway; the
    // upper bound keeps the reduced exponent n within i8 range.
    let x = x.clamp(-87.336_54, 88.376_26);
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_6e-2;
    const P4: f32 = 1.666_666_6e-1;
    const P5: f32 = 5.0e-1;
    let n = (x * LOG2E + 0.5).floor();
    // Two-step Cody-Waite reduction keeps r accurate near the split points.
    let r = x - n * LN2_HI - n * LN2_LO;
    let r2 = r * r;
    let p = ((((P0 * r + P1) * r + P2) * r + P3) * r + P4) * r + P5;
    let y = p * r2 + r + 1.0;
    // 2^n via direct exponent-bit construction; n is in [-126, 127] here.
    y * f32::from_bits(((n as i32 + 127) as u32) << 23)
}

/// In-place numerically stable softmax over one row.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = exp_approx(*v - max);
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Fast `tanh` via the standard rational (odd-polynomial) minimax
/// approximation over the f32 saturation range, accurate to ~1e-6.
///
/// Libm's `tanhf` dominated the MLP forward pass (one call per hidden
/// activation); this is pure f32 mul/add/div, so it both vectorizes and
/// stays bit-reproducible across runs.
fn tanh_approx(x: f32) -> f32 {
    // Beyond ±7.90531 f32 tanh is exactly ±1.
    let x = x.clamp(-7.905_311, 7.905_311);
    const A1: f32 = 4.893_525_6e-3;
    const A3: f32 = 6.372_619_3e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297_1e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x2 = x * x;
    let p = ((((((A13 * x2 + A11) * x2 + A9) * x2 + A7) * x2 + A5) * x2 + A3) * x2 + A1) * x;
    let q = ((B6 * x2 + B4) * x2 + B2) * x2 + B0;
    p / q
}

/// GELU activation (tanh approximation, as used by GPT-family models).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + tanh_approx(C * (x + 0.044_715 * x * x * x)))
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = tanh_approx(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook i-k-j reference kernel the blocked path must match.
    fn matmul_acc_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        for i in 0..m {
            for p in 0..k {
                let a_ip = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a_ip * b[p * n + j];
                }
            }
        }
    }

    /// Deterministic pseudo-random matrix filler.
    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &eye, 2, 2, 2, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // 1x3 @ 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut out = vec![0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_eq!(out, vec![14.0, 32.0]);
    }

    #[test]
    fn blocked_matches_reference_across_panel_boundaries() {
        // Sizes straddling PANEL_N and odd everything.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (2, 17, 63),
            (4, 9, 64),
            (5, 11, 65),
            (7, 33, 130),
        ] {
            let a = fill(m * k, 1 + (m * k * n) as u64);
            let b = fill(k * n, 2 + (m + k + n) as u64);
            let mut got = fill(m * n, 3);
            let mut want = got.clone();
            matmul_acc(&a, &b, m, k, n, &mut got);
            matmul_acc_reference(&a, &b, m, k, n, &mut want);
            assert_eq!(got, want, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn sparse_variant_matches_dense() {
        let m = 6;
        let k = 40;
        let n = 70;
        let mut a = fill(m * k, 9);
        // Punch holes so the skip branch actually fires.
        for (idx, v) in a.iter_mut().enumerate() {
            if idx % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = fill(k * n, 10);
        let mut dense = vec![0.0; m * n];
        let mut sparse = vec![0.0; m * n];
        matmul_acc(&a, &b, m, k, n, &mut dense);
        matmul_acc_sparse(&a, &b, m, k, n, &mut sparse);
        assert_eq!(dense, sparse);
    }

    /// Reference zero-skipping matvec matching the solo decode step's
    /// semantics, for pinning [`matvec_q8_acc`].
    fn matvec_acc_reference(x: &[f32], w: &[f32], n: usize, out: &mut [f32]) {
        for (p, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (o, &wv) in out.iter_mut().zip(w[p * n..(p + 1) * n].iter()) {
                *o += xv * wv;
            }
        }
    }

    #[test]
    fn sparse_one_hot_rows_pick_b_rows_exactly() {
        // One-hot `a` rows (the embedding-gradient shape the sparse kernel
        // exists for): row i of the product is exactly the selected row of
        // `b`, bit for bit, and the skip branch touches nothing else.
        let k = 9;
        let n = 33;
        let b = fill(k * n, 77);
        let picks = [3usize, 0, 8, 3];
        let mut a = vec![0.0f32; picks.len() * k];
        for (i, &p) in picks.iter().enumerate() {
            a[i * k + p] = 1.0;
        }
        let mut out = vec![0.0f32; picks.len() * n];
        matmul_acc_sparse(&a, &b, picks.len(), k, n, &mut out);
        for (i, &p) in picks.iter().enumerate() {
            assert_eq!(&out[i * n..(i + 1) * n], &b[p * n..(p + 1) * n], "row {i}");
        }
    }

    #[test]
    fn sparse_all_zero_lhs_is_a_noop() {
        let (m, k, n) = (3, 11, 17);
        let b = fill(k * n, 5);
        let init = fill(m * n, 6);
        let mut out = init.clone();
        matmul_acc_sparse(&vec![0.0; m * k], &b, m, k, n, &mut out);
        assert_eq!(out, init, "zero lhs must leave the accumulator untouched");
    }

    #[test]
    fn sparse_matches_dense_across_shapes_and_masks() {
        // Pin the sparse kernel against the dense path over panel-straddling
        // shapes and varying hole densities (dense agreement is exact: both
        // accumulate each output element over k in index order).
        for &(m, k, n, keep_every) in &[
            (1, 1, 1, 1),
            (4, 9, 64, 2),
            (5, 33, 65, 3),
            (2, 17, 130, 5),
            (7, 40, 63, 1),
        ] {
            let mut a = fill(m * k, (m + k + n) as u64);
            for (idx, v) in a.iter_mut().enumerate() {
                if idx % keep_every != 0 {
                    *v = 0.0;
                }
            }
            let b = fill(k * n, (m * k * n) as u64);
            let mut dense = fill(m * n, 4);
            let mut sparse = dense.clone();
            matmul_acc(&a, &b, m, k, n, &mut dense);
            matmul_acc_sparse(&a, &b, m, k, n, &mut sparse);
            assert_eq!(dense, sparse, "m={m} k={k} n={n} keep={keep_every}");
        }
    }

    #[test]
    fn quantize_dequantize_error_bounded_per_block() {
        for &(k, n, block) in &[(7, 5, 3), (64, 64, 64), (112, 448, 64), (33, 9, 8)] {
            let w = fill(k * n, (k * n) as u64);
            let qm = QuantMatrix::quantize_blocked(&w, k, n, block);
            let deq = qm.dequantize();
            for p in 0..k {
                for j in 0..n {
                    let err = (w[p * n + j] - deq[p * n + j]).abs();
                    let bound = qm.scale_at(p, j) * 0.501 + 1e-6;
                    assert!(
                        err <= bound,
                        "k={k} n={n} block={block} ({p},{j}): err {err} > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_constant_blocks_are_exact() {
        // A constant block has range 0 → scale 0; the offset alone must
        // reproduce the value bit for bit (including a negative constant).
        let (k, n) = (16, 5);
        let mut w = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                w[p * n + j] = [-3.25f32, 0.0, 7.5, -0.125, 42.0][j];
            }
        }
        let qm = QuantMatrix::quantize_blocked(&w, k, n, 4);
        assert_eq!(qm.dequantize(), w);
    }

    #[test]
    fn quant_matmul_bit_identical_to_dequant_oracle() {
        // The central agreement claim: the fast int8 kernel over the packed
        // matrix equals the f32 blocked kernel over the dequantized matrix,
        // bit for bit, across panel-straddling shapes and block sizes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 112, 448),
            (3, 5, 7),
            (4, 9, 64),
            (5, 64, 65),
            (8, 33, 130),
        ] {
            for block in [1, 3, 8, 64] {
                let a = fill(m * k, 11 + (m * k + n) as u64);
                let w = fill(k * n, 12 + (k * n) as u64);
                let qm = QuantMatrix::quantize_blocked(&w, k, n, block);
                let deq = qm.dequantize();
                let init = fill(m * n, 13);
                let mut fast = init.clone();
                matmul_q8_acc(&a, &qm, m, &mut fast);
                let mut oracle = init;
                matmul_acc(&a, &deq, m, k, n, &mut oracle);
                assert!(
                    fast.iter()
                        .zip(oracle.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "m={m} k={k} n={n} block={block}: fast path diverged from dequant oracle"
                );
            }
        }
    }

    #[test]
    fn quant_matmul_thread_counts_agree_exactly() {
        let (m, k, n) = (13, 47, 129);
        let a = fill(m * k, 31);
        let w = fill(k * n, 32);
        let qm = QuantMatrix::quantize(&w, k, n);
        let mut one = vec![0.0; m * n];
        matmul_q8_acc_threads(&a, &qm, m, &mut one, 1);
        for threads in [2, 3, 4, 16] {
            let mut many = vec![0.0; m * n];
            matmul_q8_acc_threads(&a, &qm, m, &mut many, threads);
            assert!(
                one.iter()
                    .zip(many.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn quant_matvec_matches_skipping_reference_on_dequant() {
        let (k, n) = (40, 70);
        let mut x = fill(k, 41);
        for (idx, v) in x.iter_mut().enumerate() {
            if idx % 3 == 0 {
                *v = 0.0; // make the skip branch fire
            }
        }
        let w = fill(k * n, 42);
        let qm = QuantMatrix::quantize_blocked(&w, k, n, 16);
        let deq = qm.dequantize();
        let init = fill(n, 43);
        let mut fast = init.clone();
        matvec_q8_acc(&x, &qm, &mut fast);
        let mut oracle = init;
        matvec_acc_reference(&x, &deq, n, &mut oracle);
        assert!(
            fast.iter()
                .zip(oracle.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "quant matvec diverged from skipping reference"
        );
    }

    #[test]
    fn quant_overwrite_variant_and_zero_dims() {
        let (m, k, n) = (2, 6, 9);
        let a = fill(m * k, 51);
        let w = fill(k * n, 52);
        let qm = QuantMatrix::quantize(&w, k, n);
        let mut got = vec![7.0; m * n]; // stale values must be overwritten
        matmul_q8(&a, &qm, m, &mut got);
        let mut want = vec![0.0; m * n];
        matmul_acc(&a, &qm.dequantize(), m, k, n, &mut want);
        assert_eq!(got, want);

        let empty = QuantMatrix::quantize(&[], 0, 4);
        let mut out = vec![1.0; 4];
        matmul_q8_acc(&[], &empty, 1, &mut out);
        assert_eq!(out, vec![1.0; 4]); // k=0 accumulates nothing
    }

    #[test]
    fn quant_packing_shrinks_weights() {
        let (k, n) = (112, 448);
        let w = fill(k * n, 61);
        let qm = QuantMatrix::quantize(&w, k, n);
        assert!(
            (qm.packed_bytes() as f64) < 0.3 * qm.f32_bytes() as f64,
            "packed {} vs f32 {}",
            qm.packed_bytes(),
            qm.f32_bytes()
        );
    }

    #[test]
    fn thread_counts_agree_exactly() {
        // The determinism contract: 1, 2, and 4 threads are bit-identical.
        let m = 13;
        let k = 47;
        let n = 129;
        let a = fill(m * k, 21);
        let b = fill(k * n, 22);
        let mut one = vec![0.0; m * n];
        matmul_acc_threads(&a, &b, m, k, n, &mut one, 1);
        for threads in [2, 3, 4, 16] {
            let mut many = vec![0.0; m * n];
            matmul_acc_threads(&a, &b, m, k, n, &mut many, threads);
            assert!(
                one.iter()
                    .zip(many.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads} diverged from single-threaded result"
            );
        }
    }

    #[test]
    fn zero_dimension_products_are_noops() {
        let mut out = vec![0.0; 0];
        matmul_acc(&[], &[], 0, 3, 0, &mut out);
        let mut out2 = vec![1.0; 4];
        matmul_acc(&[], &[], 2, 0, 2, &mut out2);
        assert_eq!(out2, vec![1.0; 4]); // k=0: accumulate nothing
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        // a: 3x2, b: 3x4 -> aT@b : 2x4
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![1., 0., 2., 1., 0., 3., 1., 2., 2., 1., 0., 1.];
        let mut got = vec![0.0; 8];
        matmul_at_b_acc(&a, &b, 2, 3, 4, &mut got);
        // explicit transpose of a: 2x3
        let at = vec![1., 3., 5., 2., 4., 6.];
        let mut want = vec![0.0; 8];
        matmul(&at, &b, 2, 3, 4, &mut want);
        assert_eq!(got, want);

        // a: 2x3, b: 4x3 -> a@bT : 2x4
        let a2 = vec![1., 2., 3., 4., 5., 6.];
        let b2 = vec![1., 0., 1., 2., 1., 0., 0., 3., 2., 1., 1., 1.];
        let mut got2 = vec![0.0; 8];
        matmul_a_bt_acc(&a2, &b2, 2, 3, 4, &mut got2);
        let b2t = vec![1., 2., 0., 1., 0., 1., 3., 1., 1., 0., 2., 1.];
        let mut want2 = vec![0.0; 8];
        matmul(&a2, &b2t, 2, 3, 4, &mut want2);
        assert_eq!(got2, want2);
    }

    #[test]
    fn threads_for_respects_size_floor() {
        assert_eq!(threads_for(1, 4096, 4096), 1); // single row: nothing to split
        assert_eq!(threads_for(4, 8, 8), 1); // tiny: below PAR_MIN_MACS
        assert!(threads_for(256, 256, 256) >= 1);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0, 4.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut row = vec![1000.0, 1000.0];
        softmax_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn exp_approx_matches_libm() {
        let mut x = -87.0f32;
        while x < 88.0 {
            let got = exp_approx(x);
            let want = x.exp();
            let rel = if want > 0.0 {
                ((got - want) / want).abs()
            } else {
                got.abs()
            };
            assert!(rel < 2e-6, "exp({x}): approx {got} vs libm {want}");
            x += 0.0731;
        }
        assert_eq!(exp_approx(0.0), 1.0);
        // Below the clamp the result is pinned near f32::MIN_POSITIVE —
        // indistinguishable from zero once normalized by a softmax sum.
        assert!(exp_approx(-200.0) < 1e-37);
        assert!(exp_approx(f32::NAN).is_nan());
    }

    #[test]
    fn tanh_approx_matches_libm() {
        let mut x = -9.0f32;
        while x < 9.0 {
            let got = tanh_approx(x);
            let want = x.tanh();
            assert!(
                (got - want).abs() < 1e-5,
                "tanh({x}): approx {got} vs libm {want}"
            );
            x += 0.0137;
        }
        assert_eq!(tanh_approx(0.0), 0.0);
        assert!(tanh_approx(f32::NAN).is_nan());
    }

    #[test]
    fn gelu_reference_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // large x -> identity, large -x -> 0
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {}",
                gelu_grad(x),
                fd
            );
        }
    }
}
