//! Low-level f32 kernels shared by the autograd tape (training) and the
//! KV-cache inference path in `wisdom-model`.
//!
//! All matrices are dense row-major. Loops are ordered i-k-j so the inner
//! loop streams both the output row and the right-hand row, which is the
//! cache-friendly order for row-major storage.

/// `out += a @ b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n`.
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with the dimensions.
pub fn matmul_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * bv;
            }
        }
    }
}

/// `out = a @ b` (overwrites `out`).
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    out.fill(0.0);
    matmul_acc(a, b, m, k, n, out);
}

/// `out += aᵀ @ b` where `a` is `k×m` (so `aᵀ` is `m×k`), `b` is `k×n`.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_pi * bv;
            }
        }
    }
}

/// `out += a @ bᵀ` where `a` is `m×k`, `b` is `n×k` (so `bᵀ` is `k×n`).
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *o += dot(a_row, b_row);
        }
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// In-place numerically stable softmax over one row.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// GELU activation (tanh approximation, as used by GPT-family models).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &eye, 2, 2, 2, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // 1x3 @ 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut out = vec![0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_eq!(out, vec![14.0, 32.0]);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        // a: 3x2, b: 3x4 -> aT@b : 2x4
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![1., 0., 2., 1., 0., 3., 1., 2., 2., 1., 0., 1.];
        let mut got = vec![0.0; 8];
        matmul_at_b_acc(&a, &b, 2, 3, 4, &mut got);
        // explicit transpose of a: 2x3
        let at = vec![1., 3., 5., 2., 4., 6.];
        let mut want = vec![0.0; 8];
        matmul(&at, &b, 2, 3, 4, &mut want);
        assert_eq!(got, want);

        // a: 2x3, b: 4x3 -> a@bT : 2x4
        let a2 = vec![1., 2., 3., 4., 5., 6.];
        let b2 = vec![1., 0., 1., 2., 1., 0., 0., 3., 2., 1., 1., 1.];
        let mut got2 = vec![0.0; 8];
        matmul_a_bt_acc(&a2, &b2, 2, 3, 4, &mut got2);
        let b2t = vec![1., 2., 0., 1., 0., 1., 3., 1., 1., 0., 2., 1.];
        let mut want2 = vec![0.0; 8];
        matmul(&a2, &b2t, 2, 3, 4, &mut want2);
        assert_eq!(got2, want2);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0, 4.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut row = vec![1000.0, 1000.0];
        softmax_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gelu_reference_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // large x -> identity, large -x -> 0
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {}",
                gelu_grad(x),
                fd
            );
        }
    }
}
