//! Low-level f32 kernels shared by the autograd tape (training) and the
//! KV-cache inference path in `wisdom-model`.
//!
//! All matrices are dense row-major. The dense kernels are blocked: the
//! right-hand side is packed into contiguous column panels so the inner
//! loop streams one panel that stays cache-resident across all output
//! rows. Above [`PAR_MIN_MACS`] multiply-accumulates, output rows are
//! partitioned across scoped threads.
//!
//! Determinism contract: for every output element the k-dimension is
//! summed in index order, and threading only ever partitions *rows*, so
//! results are bit-identical across panel widths and thread counts
//! (including the single-threaded path). `tests/determinism.rs` and the
//! thread-agreement tests below rely on this.

/// Column-panel width for the blocked kernels.
const PANEL_N: usize = 64;

/// Multiply-accumulate budget per worker thread: a kernel call gets one
/// thread per this many MACs, so small products never pay spawn costs and
/// large ones saturate the machine.
pub const PAR_MACS_PER_THREAD: usize = 1 << 19;

/// Upper bound on worker threads for one kernel call.
const PAR_MAX_THREADS: usize = 8;

/// Number of threads [`matmul_acc`] and friends would use for an
/// `m`×`k` @ `k`×`n` product on this machine.
pub fn threads_for(m: usize, k: usize, n: usize) -> usize {
    let macs = m.saturating_mul(k).saturating_mul(n);
    let by_work = macs / PAR_MACS_PER_THREAD;
    if m < 2 || by_work < 2 {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    by_work.min(hw).min(PAR_MAX_THREADS).min(m)
}

/// Runs `body(first_row, row_count, out_rows)` over a deterministic
/// partition of `m` output rows into at most `threads` contiguous chunks.
///
/// The chunking depends only on `m` and `threads`, never on scheduling,
/// and each row is produced by exactly one invocation — so any `threads`
/// value yields bit-identical `out`.
fn for_each_row_chunk<F>(m: usize, n: usize, out: &mut [f32], threads: usize, body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Send + Sync,
{
    if m == 0 || n == 0 {
        return;
    }
    if threads <= 1 {
        body(0, m, out);
        return;
    }
    let chunk = m.div_ceil(threads);
    crossbeam::scope(|scope| {
        // The caller thread takes the first chunk itself, so a `threads`-way
        // split only spawns `threads - 1` workers.
        let mut chunks = out.chunks_mut(chunk * n).enumerate();
        let first = chunks.next();
        for (ti, out_chunk) in chunks {
            let body = &body;
            scope.spawn(move |_| body(ti * chunk, out_chunk.len() / n, out_chunk));
        }
        if let Some((ti, out_chunk)) = first {
            body(ti * chunk, out_chunk.len() / n, out_chunk);
        }
    })
    .expect("kernel thread scope");
}

/// Packs `b` (`k`×`n` row-major) into contiguous column panels of width
/// [`PANEL_N`]: panel-major, then row-major inside each panel.
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed = Vec::with_capacity(k * n);
    for j0 in (0..n).step_by(PANEL_N) {
        let nb = PANEL_N.min(n - j0);
        for p in 0..k {
            packed.extend_from_slice(&b[p * n + j0..p * n + j0 + nb]);
        }
    }
    packed
}

/// Register-tile height (output rows per micro-kernel invocation).
const MR: usize = 4;
/// Register-tile width (output columns per micro-kernel invocation).
const NR: usize = 8;

/// Blocked core: accumulates `rows` output rows against pre-packed
/// panels. `a_rows` holds exactly `rows * k` values.
///
/// The hot path is an `MR`×`NR` register-tiled micro-kernel: each output
/// element is loaded into a register once, accumulated over the whole `k`
/// dimension, and stored once — so per-element summation order is exactly
/// the classic axpy order `((init + t₀) + t₁) + …`, bit-identical to the
/// remainder path and to a 1×n matvec.
fn matmul_acc_packed(
    a_rows: &[f32],
    packed: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let mut panel_off = 0;
    for j0 in (0..n).step_by(PANEL_N) {
        let nb = PANEL_N.min(n - j0);
        let panel = &packed[panel_off..panel_off + k * nb];
        panel_off += k * nb;
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            let mut j = 0;
            while j < nb {
                let nr = NR.min(nb - j);
                if mr == MR && nr == NR {
                    let mut acc = [[0.0f32; NR]; MR];
                    for (r, acc_row) in acc.iter_mut().enumerate() {
                        let o = (i + r) * n + j0 + j;
                        acc_row.copy_from_slice(&out[o..o + NR]);
                    }
                    // Iterator-driven so the per-`p` a-loads and panel
                    // segments compile without repeated index arithmetic
                    // or bounds checks.
                    let a0 = a_rows[i * k..(i + 1) * k].iter();
                    let a1 = a_rows[(i + 1) * k..(i + 2) * k].iter();
                    let a2 = a_rows[(i + 2) * k..(i + 3) * k].iter();
                    let a3 = a_rows[(i + 3) * k..(i + 4) * k].iter();
                    for ((((b_row, &a0p), &a1p), &a2p), &a3p) in
                        panel.chunks_exact(nb).zip(a0).zip(a1).zip(a2).zip(a3)
                    {
                        let b_seg: &[f32; NR] =
                            b_row[j..j + NR].try_into().expect("NR-wide panel segment");
                        let a_p = [a0p, a1p, a2p, a3p];
                        for (acc_row, &a_rp) in acc.iter_mut().zip(a_p.iter()) {
                            for (o, &bv) in acc_row.iter_mut().zip(b_seg.iter()) {
                                *o += a_rp * bv;
                            }
                        }
                    }
                    for (r, acc_row) in acc.iter().enumerate() {
                        let o = (i + r) * n + j0 + j;
                        out[o..o + NR].copy_from_slice(acc_row);
                    }
                } else {
                    // Remainder tile: same per-element accumulation order.
                    for r in 0..mr {
                        let a_row = &a_rows[(i + r) * k..(i + r + 1) * k];
                        for c in 0..nr {
                            let mut acc = out[(i + r) * n + j0 + j + c];
                            for (p, &a_rp) in a_row.iter().enumerate() {
                                acc += a_rp * panel[p * nb + j + c];
                            }
                            out[(i + r) * n + j0 + j + c] = acc;
                        }
                    }
                }
                j += nr;
            }
            i += mr;
        }
    }
}

/// `out += a @ b` where `a` is `m×k`, `b` is `k×n`, `out` is `m×n`.
///
/// Dense path: no zero-skipping (use [`matmul_acc_sparse`] when `a` is
/// known to be mostly zeros), blocked RHS packing, and automatic row
/// threading above [`PAR_MIN_MACS`].
///
/// # Panics
///
/// Panics (in debug builds) if slice lengths disagree with the dimensions.
pub fn matmul_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_acc_threads(a, b, m, k, n, out, threads_for(m, k, n));
}

/// [`matmul_acc`] with an explicit thread count. Results are bit-identical
/// for every `threads` value; exposed so tests and benches can pin it.
pub fn matmul_acc_threads(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let packed = pack_b_panels(b, k, n);
    for_each_row_chunk(m, n, out, threads.max(1).min(m), |r0, rows, out_rows| {
        matmul_acc_packed(&a[r0 * k..(r0 + rows) * k], &packed, rows, k, n, out_rows);
    });
}

/// `out += a @ b`, skipping zero entries of `a`.
///
/// The former default kernel, kept for operands that are structurally
/// sparse (one-hot rows, masked gradients): the branch is a win there and
/// a ~15% tax on dense inputs.
pub fn matmul_acc_sparse(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * bv;
            }
        }
    }
}

/// `out = a @ b` (overwrites `out`).
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    out.fill(0.0);
    matmul_acc(a, b, m, k, n, out);
}

/// `out += aᵀ @ b` where `a` is `k×m` (so `aᵀ` is `m×k`), `b` is `k×n`.
///
/// Written per-output-row with the `k` dimension summed in index order,
/// so it is bit-identical to the historical `p`-outer formulation and
/// safe to partition by rows.
pub fn matmul_at_b_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = threads_for(m, k, n);
    for_each_row_chunk(m, n, out, threads, |r0, rows, out_rows| {
        for i in 0..rows {
            let col = r0 + i;
            let out_row = &mut out_rows[i * n..(i + 1) * n];
            for p in 0..k {
                let a_pi = a[p * m + col];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_pi * bv;
                }
            }
        }
    });
}

/// `out += a @ bᵀ` where `a` is `m×k`, `b` is `n×k` (so `bᵀ` is `k×n`).
pub fn matmul_a_bt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let threads = threads_for(m, k, n);
    for_each_row_chunk(m, n, out, threads, |r0, rows, out_rows| {
        for i in 0..rows {
            let a_row = &a[(r0 + i) * k..(r0 + i + 1) * k];
            let out_row = &mut out_rows[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                *o += dot(a_row, b_row);
            }
        }
    });
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Fast `exp` via the standard Cephes-style range reduction
/// (`x = n·ln2 + r`, degree-5 polynomial on `r`, exponent-bit scaling by
/// `2^n`), accurate to ~1e-6 relative. Pure f32 arithmetic: vectorizes and
/// stays bit-reproducible, unlike libm's `expf`, which dominated softmax.
fn exp_approx(x: f32) -> f32 {
    // Outside this range f32 exp overflows / flushes to zero anyway; the
    // upper bound keeps the reduced exponent n within i8 range.
    let x = x.clamp(-87.336_54, 88.376_26);
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_6e-2;
    const P4: f32 = 1.666_666_6e-1;
    const P5: f32 = 5.0e-1;
    let n = (x * LOG2E + 0.5).floor();
    // Two-step Cody-Waite reduction keeps r accurate near the split points.
    let r = x - n * LN2_HI - n * LN2_LO;
    let r2 = r * r;
    let p = ((((P0 * r + P1) * r + P2) * r + P3) * r + P4) * r + P5;
    let y = p * r2 + r + 1.0;
    // 2^n via direct exponent-bit construction; n is in [-126, 127] here.
    y * f32::from_bits(((n as i32 + 127) as u32) << 23)
}

/// In-place numerically stable softmax over one row.
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = exp_approx(*v - max);
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Fast `tanh` via the standard rational (odd-polynomial) minimax
/// approximation over the f32 saturation range, accurate to ~1e-6.
///
/// Libm's `tanhf` dominated the MLP forward pass (one call per hidden
/// activation); this is pure f32 mul/add/div, so it both vectorizes and
/// stays bit-reproducible across runs.
fn tanh_approx(x: f32) -> f32 {
    // Beyond ±7.90531 f32 tanh is exactly ±1.
    let x = x.clamp(-7.905_311, 7.905_311);
    const A1: f32 = 4.893_525_6e-3;
    const A3: f32 = 6.372_619_3e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297_1e-8;
    const A9: f32 = -8.604_672e-11;
    const A11: f32 = 2.000_188e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x2 = x * x;
    let p = ((((((A13 * x2 + A11) * x2 + A9) * x2 + A7) * x2 + A5) * x2 + A3) * x2 + A1) * x;
    let q = ((B6 * x2 + B4) * x2 + B2) * x2 + B0;
    p / q
}

/// GELU activation (tanh approximation, as used by GPT-family models).
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + tanh_approx(C * (x + 0.044_715 * x * x * x)))
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044_715 * x3);
    let t = tanh_approx(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook i-k-j reference kernel the blocked path must match.
    fn matmul_acc_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        for i in 0..m {
            for p in 0..k {
                let a_ip = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a_ip * b[p * n + j];
                }
            }
        }
    }

    /// Deterministic pseudo-random matrix filler.
    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &eye, 2, 2, 2, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // 1x3 @ 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut out = vec![0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_eq!(out, vec![14.0, 32.0]);
    }

    #[test]
    fn blocked_matches_reference_across_panel_boundaries() {
        // Sizes straddling PANEL_N and odd everything.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (2, 17, 63),
            (4, 9, 64),
            (5, 11, 65),
            (7, 33, 130),
        ] {
            let a = fill(m * k, 1 + (m * k * n) as u64);
            let b = fill(k * n, 2 + (m + k + n) as u64);
            let mut got = fill(m * n, 3);
            let mut want = got.clone();
            matmul_acc(&a, &b, m, k, n, &mut got);
            matmul_acc_reference(&a, &b, m, k, n, &mut want);
            assert_eq!(got, want, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn sparse_variant_matches_dense() {
        let m = 6;
        let k = 40;
        let n = 70;
        let mut a = fill(m * k, 9);
        // Punch holes so the skip branch actually fires.
        for (idx, v) in a.iter_mut().enumerate() {
            if idx % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = fill(k * n, 10);
        let mut dense = vec![0.0; m * n];
        let mut sparse = vec![0.0; m * n];
        matmul_acc(&a, &b, m, k, n, &mut dense);
        matmul_acc_sparse(&a, &b, m, k, n, &mut sparse);
        assert_eq!(dense, sparse);
    }

    #[test]
    fn thread_counts_agree_exactly() {
        // The determinism contract: 1, 2, and 4 threads are bit-identical.
        let m = 13;
        let k = 47;
        let n = 129;
        let a = fill(m * k, 21);
        let b = fill(k * n, 22);
        let mut one = vec![0.0; m * n];
        matmul_acc_threads(&a, &b, m, k, n, &mut one, 1);
        for threads in [2, 3, 4, 16] {
            let mut many = vec![0.0; m * n];
            matmul_acc_threads(&a, &b, m, k, n, &mut many, threads);
            assert!(
                one.iter()
                    .zip(many.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads} diverged from single-threaded result"
            );
        }
    }

    #[test]
    fn zero_dimension_products_are_noops() {
        let mut out = vec![0.0; 0];
        matmul_acc(&[], &[], 0, 3, 0, &mut out);
        let mut out2 = vec![1.0; 4];
        matmul_acc(&[], &[], 2, 0, 2, &mut out2);
        assert_eq!(out2, vec![1.0; 4]); // k=0: accumulate nothing
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        // a: 3x2, b: 3x4 -> aT@b : 2x4
        let a = vec![1., 2., 3., 4., 5., 6.];
        let b = vec![1., 0., 2., 1., 0., 3., 1., 2., 2., 1., 0., 1.];
        let mut got = vec![0.0; 8];
        matmul_at_b_acc(&a, &b, 2, 3, 4, &mut got);
        // explicit transpose of a: 2x3
        let at = vec![1., 3., 5., 2., 4., 6.];
        let mut want = vec![0.0; 8];
        matmul(&at, &b, 2, 3, 4, &mut want);
        assert_eq!(got, want);

        // a: 2x3, b: 4x3 -> a@bT : 2x4
        let a2 = vec![1., 2., 3., 4., 5., 6.];
        let b2 = vec![1., 0., 1., 2., 1., 0., 0., 3., 2., 1., 1., 1.];
        let mut got2 = vec![0.0; 8];
        matmul_a_bt_acc(&a2, &b2, 2, 3, 4, &mut got2);
        let b2t = vec![1., 2., 0., 1., 0., 1., 3., 1., 1., 0., 2., 1.];
        let mut want2 = vec![0.0; 8];
        matmul(&a2, &b2t, 2, 3, 4, &mut want2);
        assert_eq!(got2, want2);
    }

    #[test]
    fn threads_for_respects_size_floor() {
        assert_eq!(threads_for(1, 4096, 4096), 1); // single row: nothing to split
        assert_eq!(threads_for(4, 8, 8), 1); // tiny: below PAR_MIN_MACS
        assert!(threads_for(256, 256, 256) >= 1);
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0, 4.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut row = vec![1000.0, 1000.0];
        softmax_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn exp_approx_matches_libm() {
        let mut x = -87.0f32;
        while x < 88.0 {
            let got = exp_approx(x);
            let want = x.exp();
            let rel = if want > 0.0 {
                ((got - want) / want).abs()
            } else {
                got.abs()
            };
            assert!(rel < 2e-6, "exp({x}): approx {got} vs libm {want}");
            x += 0.0731;
        }
        assert_eq!(exp_approx(0.0), 1.0);
        // Below the clamp the result is pinned near f32::MIN_POSITIVE —
        // indistinguishable from zero once normalized by a softmax sum.
        assert!(exp_approx(-200.0) < 1e-37);
        assert!(exp_approx(f32::NAN).is_nan());
    }

    #[test]
    fn tanh_approx_matches_libm() {
        let mut x = -9.0f32;
        while x < 9.0 {
            let got = tanh_approx(x);
            let want = x.tanh();
            assert!(
                (got - want).abs() < 1e-5,
                "tanh({x}): approx {got} vs libm {want}"
            );
            x += 0.0137;
        }
        assert_eq!(tanh_approx(0.0), 0.0);
        assert!(tanh_approx(f32::NAN).is_nan());
    }

    #[test]
    fn gelu_reference_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // large x -> identity, large -x -> 0
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {}",
                gelu_grad(x),
                fd
            );
        }
    }
}
