//! Property tests for histogram snapshots: merge must behave like the
//! abelian monoid it claims to be, so shard-level aggregation order can
//! never change what a dashboard reports.

use proptest::prelude::*;
use wisdom_telemetry::{Histogram, HistogramSnapshot};

/// Builds a snapshot over the default latency buckets from raw samples.
fn snap(samples: &[f64]) -> HistogramSnapshot {
    let h = Histogram::latency();
    for &s in samples {
        // Map arbitrary non-negative inputs into the bucket range.
        h.observe(s.abs() % 100.0);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): bucket counts exactly, sums to float
    /// tolerance.
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(any::<f64>(), 0..40),
        ys in prop::collection::vec(any::<f64>(), 0..40),
        zs in prop::collection::vec(any::<f64>(), 0..40),
    ) {
        let (a, b, c) = (snap(&xs), snap(&ys), snap(&zs));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left.counts, &right.counts);
        prop_assert!((left.sum - right.sum).abs() <= 1e-9 * (1.0 + left.sum.abs()));
    }

    /// a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(any::<f64>(), 0..40),
        ys in prop::collection::vec(any::<f64>(), 0..40),
    ) {
        let (a, b) = (snap(&xs), snap(&ys));
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(&ab.counts, &ba.counts);
        prop_assert!((ab.sum - ba.sum).abs() <= 1e-9 * (1.0 + ab.sum.abs()));
    }

    /// The empty snapshot is the identity, and merge adds counts.
    #[test]
    fn empty_is_identity_and_counts_add(
        xs in prop::collection::vec(any::<f64>(), 0..40),
        ys in prop::collection::vec(any::<f64>(), 0..40),
    ) {
        let (a, b) = (snap(&xs), snap(&ys));
        let id = snap(&[]);
        prop_assert_eq!(&merged(&a, &id).counts, &a.counts);
        prop_assert_eq!(merged(&a, &b).count(), a.count() + b.count());
    }

    /// Merging two live-histogram snapshots equals one histogram fed both
    /// sample streams.
    #[test]
    fn merge_matches_single_histogram(
        xs in prop::collection::vec(any::<f64>(), 0..40),
        ys in prop::collection::vec(any::<f64>(), 0..40),
    ) {
        let combined: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let whole = snap(&combined);
        let parts = merged(&snap(&xs), &snap(&ys));
        prop_assert_eq!(&whole.counts, &parts.counts);
        prop_assert!((whole.sum - parts.sum).abs() <= 1e-9 * (1.0 + whole.sum.abs()));
    }
}
