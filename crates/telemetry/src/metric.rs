//! Scalar metric primitives: atomic counters, gauges, and the scoped
//! latency [`Timer`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;

/// A monotonically non-decreasing event count. All operations are single
/// relaxed atomics; cross-thread increments are never lost.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depth, batch occupancy, cache
/// bytes). Stored as `f64` bits in one atomic word.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative). Lock-free via compare-and-swap, so
    /// concurrent adds are never lost.
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A span guard: measures from construction to [`Timer::stop`] (or drop)
/// and records the elapsed seconds into a [`Histogram`].
///
/// # Examples
///
/// ```
/// use wisdom_telemetry::{Histogram, Timer};
/// use std::sync::Arc;
///
/// let h = Arc::new(Histogram::latency());
/// {
///     let _span = Timer::start(Arc::clone(&h));
///     // ... timed work ...
/// }
/// assert_eq!(h.snapshot().count(), 1);
/// ```
#[derive(Debug)]
pub struct Timer {
    histogram: Arc<Histogram>,
    started: Instant,
    armed: bool,
}

impl Timer {
    /// Starts timing into `histogram`.
    pub fn start(histogram: Arc<Histogram>) -> Timer {
        Timer {
            histogram,
            started: Instant::now(),
            armed: true,
        }
    }

    /// Stops the span now, records it, and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.started.elapsed();
        self.histogram.observe(elapsed.as_secs_f64());
        self.armed = false;
        elapsed
    }

    /// Abandons the span without recording (e.g. the request was shed).
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.observe(self.started.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn counter_concurrent_increments_are_exact() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.0);
        g.sub(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_concurrent_adds_are_exact() {
        let g = Arc::new(Gauge::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        g.add(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!((g.get() - 80_000.0).abs() < 1e-9);
    }

    #[test]
    fn timer_records_on_drop_and_stop() {
        let h = Arc::new(Histogram::latency());
        drop(Timer::start(Arc::clone(&h)));
        let d = Timer::start(Arc::clone(&h)).stop();
        assert!(d.as_secs_f64() >= 0.0);
        Timer::start(Arc::clone(&h)).discard();
        assert_eq!(h.snapshot().count(), 2);
    }
}
