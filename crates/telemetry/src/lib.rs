//! `wisdom-telemetry` — the observability subsystem of the serving stack.
//!
//! Production LLM serving is tuned off per-request latency distributions
//! (queue wait, time-to-first-token, inter-token latency) and cache/batch
//! counters, not aggregate averages printed after the fact. This crate is
//! the dependency-free substrate those signals flow through:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars;
//! * [`Histogram`] — log-bucketed latency distribution with p50/p90/p99
//!   estimation and mergeable [`HistogramSnapshot`]s;
//! * [`Registry`] — a label-aware metric registry with get-or-create
//!   semantics, shared via `Arc` handles;
//! * [`Timer`] — a drop guard that records a scoped duration into a
//!   histogram;
//! * Prometheus text exposition ([`Registry::render`]) for `GET /metrics`;
//! * [`Logger`] — an opt-in structured access/error log filtered by the
//!   `WISDOM_LOG` environment variable (`info` | `debug`).
//!
//! Everything is thread-safe and `std`-only: recording a sample is one or
//! two relaxed atomic operations, so instrumentation can sit on the decode
//! hot path (the `-- telemetry` experiment in `wisdom-eval` pins the
//! overhead under 1% of decode throughput).
//!
//! # Examples
//!
//! ```
//! use wisdom_telemetry::{Histogram, Registry};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("demo_requests_total", "Requests served.");
//! let latency = registry.histogram(
//!     "demo_latency_seconds",
//!     "Request latency.",
//!     &Histogram::latency_buckets(),
//! );
//! requests.inc();
//! latency.observe(0.012);
//! let text = registry.render();
//! assert!(text.contains("# TYPE demo_latency_seconds histogram"));
//! assert!(text.contains("demo_requests_total 1"));
//! ```

mod histogram;
mod log;
mod metric;
mod registry;

pub use histogram::{Histogram, HistogramSnapshot};
pub use log::{LogLevel, Logger};
pub use metric::{Counter, Gauge, Timer};
pub use registry::{sample_value, Registry};
