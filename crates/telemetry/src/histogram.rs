//! Log-bucketed histograms with quantile estimation and mergeable
//! snapshots.
//!
//! Latency distributions span four-plus orders of magnitude (a cache-hit
//! admission is microseconds, a cold 2.7B-class prefill is hundreds of
//! milliseconds), so buckets grow geometrically: each bucket's upper bound
//! is `factor ×` the previous one. Quantiles estimated from such buckets
//! are accurate to within one bucket ratio — exactly the resolution needed
//! to tell p50 from p99, at a fixed 25-word memory cost and a two-atomic
//! recording cost.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default latency bucket scheme: 24 log₂ buckets from 10 µs to ~84 s.
const LATENCY_START: f64 = 1e-5;
const LATENCY_FACTOR: f64 = 2.0;
const LATENCY_COUNT: usize = 24;

/// A thread-safe histogram over fixed, strictly increasing bucket upper
/// bounds (plus an implicit `+Inf` overflow bucket). Recording is one
/// atomic increment and one atomic add; snapshots are consistent enough
/// for serving dashboards (counts may trail the sum by in-flight samples).
#[derive(Debug)]
pub struct Histogram {
    /// Bucket upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the `+Inf` bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits.
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, not strictly increasing, or contains a
    /// non-finite value.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing: {bounds:?}"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite (+Inf is implicit): {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Geometric bucket bounds: `start, start·factor, …` (`count` buckets).
    ///
    /// # Panics
    ///
    /// Panics if `start <= 0`, `factor <= 1`, or `count == 0`.
    pub fn log_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
        assert!(
            start > 0.0 && factor > 1.0 && count > 0,
            "degenerate bucket scheme"
        );
        let mut bound = start;
        (0..count)
            .map(|_| {
                let b = bound;
                bound *= factor;
                b
            })
            .collect()
    }

    /// The default latency bucket scheme (24 log₂ buckets, 10 µs → ~84 s).
    pub fn latency_buckets() -> Vec<f64> {
        Self::log_buckets(LATENCY_START, LATENCY_FACTOR, LATENCY_COUNT)
    }

    /// A histogram with the default latency buckets.
    pub fn latency() -> Histogram {
        Histogram::new(&Self::latency_buckets())
    }

    /// The bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation. Values above the last bound land in the
    /// `+Inf` bucket; NaN is ignored.
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        // First bucket whose upper bound is >= v (Prometheus `le`
        // semantics: bounds are inclusive upper edges).
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state. Merging snapshots
/// from shards/workers is associative and commutative, so partial
/// aggregations can be combined in any order.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (without the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges `other` into `self` (same bucket scheme required).
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging mismatched bucket schemes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket holding the target rank — the standard
    /// Prometheus `histogram_quantile` estimator. Returns 0 for an empty
    /// histogram; the `+Inf` bucket is clamped to the last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank in 1..=total.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds.get(i).copied().unwrap_or_else(|| {
                    // +Inf bucket: report the largest finite bound.
                    *self.bounds.last().expect("non-empty bounds")
                });
                let into = (rank - seen) as f64 / c as f64;
                return lower + (upper - lower) * into;
            }
            seen += c;
        }
        *self.bounds.last().expect("non-empty bounds")
    }

    /// The median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_edges() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0 (le 1.0)
        h.observe(1.0); // bucket 0: bounds are inclusive
        h.observe(1.0001); // bucket 1 (le 2.0)
        h.observe(4.0); // bucket 2 (le 4.0)
        h.observe(100.0); // +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count(), 5);
        assert!((s.sum - 106.5001).abs() < 1e-9);
    }

    #[test]
    fn log_buckets_grow_geometrically() {
        let b = Histogram::log_buckets(1e-5, 2.0, 24);
        assert_eq!(b.len(), 24);
        assert!((b[0] - 1e-5).abs() < 1e-12);
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
        // The default scheme covers 10µs .. ~84s.
        assert!(b[23] > 60.0 && b[23] < 120.0);
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::latency();
        h.observe(f64::NAN);
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn quantiles_match_sorted_sample_oracle_within_a_bucket() {
        // Seeded pseudo-random latencies across the bucket range.
        let mut rng = wisdom_prng::Prng::seed_from_u64(42);
        let h = Histogram::latency();
        let mut samples: Vec<f64> = (0..10_000)
            .map(|_| {
                // Log-uniform over ~[30µs, 3s].
                let e = rng.range_f64(-4.5, 0.5);
                10f64.powf(e)
            })
            .collect();
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99] {
            let oracle =
                samples[(((q * samples.len() as f64).ceil() as usize) - 1).min(samples.len() - 1)];
            let est = snap.quantile(q);
            // A log₂ bucket scheme pins the estimate within one bucket
            // ratio of the true order statistic.
            assert!(
                est / oracle < 2.05 && oracle / est < 2.05,
                "q={q}: estimate {est} vs oracle {oracle}"
            );
        }
        assert!((snap.mean() - samples.iter().sum::<f64>() / samples.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.snapshot().quantile(0.5), 0.0, "empty histogram");
        h.observe(10.0); // everything in +Inf
        assert_eq!(h.snapshot().quantile(0.5), 2.0, "+Inf clamps to last bound");
    }

    #[test]
    fn concurrent_observations_lose_nothing() {
        let h = Arc::new(Histogram::latency());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.observe(1e-4 * ((t * 10_000 + i) % 97 + 1) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 80_000);
        // The CAS-loop sum is exact, not just approximately right.
        let expected: f64 = (0..8u64)
            .flat_map(|t| (0..10_000u64).map(move |i| 1e-4 * ((t * 10_000 + i) % 97 + 1) as f64))
            .sum();
        assert!((s.sum - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counts, vec![1, 1, 1]);
        assert!((m.sum - 11.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatched bucket schemes")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]).snapshot();
        a.merge(&Histogram::new(&[2.0]).snapshot());
    }
}
