//! The label-aware metric registry and the Prometheus text encoder.
//!
//! A [`Registry`] maps `(name, labels)` to shared metric handles with
//! get-or-create semantics: instrumentation sites hold `Arc`s and record
//! lock-free; the registry's mutex is touched only at registration and
//! scrape time. [`Registry::render`] emits the classic Prometheus text
//! exposition format (version 0.0.4) served by `GET /metrics`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};

/// Sorted, owned label set — the series key within a metric family.
type LabelSet = Vec<(String, String)>;

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Bucket scheme shared by every histogram series in the family.
    buckets: Vec<f64>,
    series: BTreeMap<LabelSet, Handle>,
}

/// A thread-safe registry of metric families. One registry backs one
/// `/metrics` endpoint; families are rendered in name order, series in
/// label order, so the exposition is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates an unlabelled counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or if `name` is already registered
    /// as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates a counter with labels. The same `(name, labels)`
    /// always returns the same handle.
    ///
    /// # Panics
    ///
    /// Panics on invalid names/labels or a metric-kind mismatch.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let handle = self.get_or_insert(name, help, Kind::Counter, labels, &[], || {
            Handle::Counter(Arc::new(Counter::new()))
        });
        match handle {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Gets or creates an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or a metric-kind mismatch.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates a gauge with labels.
    ///
    /// # Panics
    ///
    /// Panics on invalid names/labels or a metric-kind mismatch.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let handle = self.get_or_insert(name, help, Kind::Gauge, labels, &[], || {
            Handle::Gauge(Arc::new(Gauge::new()))
        });
        match handle {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Gets or creates an unlabelled histogram over `buckets`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name, a kind mismatch, or a bucket scheme that
    /// differs from the family's existing one.
    pub fn histogram(&self, name: &str, help: &str, buckets: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], buckets)
    }

    /// Gets or creates a histogram with labels. Every series of one family
    /// shares one bucket scheme (fixed at first registration).
    ///
    /// # Panics
    ///
    /// Panics on invalid names/labels, a kind mismatch, or a differing
    /// bucket scheme.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> Arc<Histogram> {
        let handle = self.get_or_insert(name, help, Kind::Histogram, labels, buckets, || {
            Handle::Histogram(Arc::new(Histogram::new(buckets)))
        });
        match handle {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        buckets: &[f64],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut key: LabelSet = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_label(k), "invalid label name {k:?} on {name}");
                ((*k).to_string(), (*v).to_string())
            })
            .collect();
        key.sort();
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            buckets: buckets.to_vec(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} already registered as a {}",
            family.kind.label()
        );
        if kind == Kind::Histogram {
            assert!(
                family.buckets == buckets,
                "metric {name:?} already registered with different buckets"
            );
        }
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Renders every family in Prometheus text exposition format 0.0.4.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.label());
            for (labels, handle) in &family.series {
                match handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            fmt_value(g.get())
                        );
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, c) in snap.counts.iter().enumerate() {
                            cumulative += c;
                            let le = snap
                                .bounds
                                .get(i)
                                .map_or_else(|| "+Inf".to_string(), |b| fmt_value(*b));
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, Some(&le))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            fmt_value(snap.sum)
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {cumulative}",
                            render_labels(labels, None)
                        );
                    }
                }
            }
        }
        out
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",…}` (empty string when there are no labels), with the
/// histogram `le` label appended last when given.
fn render_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Formats a sample value the way Prometheus expects: plain decimal for
/// finite values, `+Inf`/`-Inf`/`NaN` otherwise.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Pulls one sample out of an exposition body: `series` is the exact
/// series string (name plus rendered labels, e.g.
/// `wisdom_request_duration_seconds_count{route="/v1/completions"}`).
/// Returns `None` if the series is absent. Intended for tests and simple
/// scrapers.
pub fn sample_value(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        if line.starts_with('#') {
            return None;
        }
        let (ser, value) = line.rsplit_once(' ')?;
        if ser == series {
            value.parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_a_handle() {
        let r = Registry::new();
        let a = r.counter_with("x_total", "X.", &[("route", "/a")]);
        let b = r.counter_with("x_total", "X.", &[("route", "/a")]);
        let c = r.counter_with("x_total", "X.", &[("route", "/b")]);
        a.inc();
        assert_eq!(b.get(), 1, "same series, same handle");
        assert_eq!(c.get(), 0, "different labels, different series");
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter_with("y_total", "Y.", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("y_total", "Y.", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("z_total", "Z.");
        let _ = r.gauge("z_total", "Z.");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let _ = Registry::new().counter("bad name", "nope");
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn histogram_bucket_mismatch_panics() {
        let r = Registry::new();
        let _ = r.histogram("h_seconds", "H.", &[1.0, 2.0]);
        let _ = r.histogram_with("h_seconds", "H.", &[("route", "/a")], &[1.0, 4.0]);
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("req_total", "Requests.").add(3);
        r.gauge("depth", "Queue depth.").set(2.0);
        let h = r.histogram_with("lat_seconds", "Latency.", &[("route", "/x")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render();
        assert!(
            text.contains("# HELP req_total Requests.\n# TYPE req_total counter\nreq_total 3\n")
        );
        assert!(text.contains("# TYPE depth gauge\ndepth 2\n"));
        assert!(text.contains("lat_seconds_bucket{route=\"/x\",le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{route=\"/x\",le=\"1\"} 2"));
        assert!(text.contains("lat_seconds_bucket{route=\"/x\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count{route=\"/x\"} 3"));
        assert!(text.contains("lat_seconds_sum{route=\"/x\"} 5.55"));
        // Families are sorted by name: depth < lat_seconds < req_total.
        let depth = text.find("# HELP depth").unwrap();
        let lat = text.find("# HELP lat_seconds").unwrap();
        let req = text.find("# HELP req_total").unwrap();
        assert!(depth < lat && lat < req);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("e_total", "E.", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = r.render();
        assert!(text.contains(r#"e_total{path="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn sample_value_reads_back_rendered_series() {
        let r = Registry::new();
        r.counter_with("s_total", "S.", &[("route", "/v1/x")])
            .add(7);
        r.gauge("g", "G.").set(1.5);
        let text = r.render();
        assert_eq!(sample_value(&text, "s_total{route=\"/v1/x\"}"), Some(7.0));
        assert_eq!(sample_value(&text, "g"), Some(1.5));
        assert_eq!(sample_value(&text, "missing"), None);
    }
}
