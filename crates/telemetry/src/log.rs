//! Opt-in structured logging for the serving stack.
//!
//! A [`Logger`] emits one `key=value` line per event — machine-parseable,
//! grep-friendly, and silent by default. The `WISDOM_LOG` environment
//! variable selects the level (`info` or `debug`; anything else, including
//! unset, disables output), so production binaries pay a single branch per
//! call site when logging is off.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log verbosity, ordered: `Off < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No output (the default).
    Off,
    /// Request/response access lines and errors.
    Info,
    /// Everything, including per-batch scheduler detail.
    Debug,
}

impl LogLevel {
    /// Parses a `WISDOM_LOG` value; unknown strings mean [`LogLevel::Off`].
    pub fn parse(s: &str) -> LogLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "info" => LogLevel::Info,
            "debug" => LogLevel::Debug,
            _ => LogLevel::Off,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

#[derive(Debug)]
enum Sink {
    Stderr,
    /// In-memory capture for tests.
    Buffer(Mutex<Vec<String>>),
}

/// A structured, level-filtered logger. Cloning is cheap (`Arc` inside);
/// all clones share one sink.
#[derive(Debug, Clone)]
pub struct Logger {
    level: LogLevel,
    sink: Arc<Sink>,
}

impl Logger {
    /// A logger writing to stderr at `level`.
    pub fn new(level: LogLevel) -> Logger {
        Logger {
            level,
            sink: Arc::new(Sink::Stderr),
        }
    }

    /// A logger configured from the `WISDOM_LOG` environment variable.
    pub fn from_env() -> Logger {
        let level = std::env::var("WISDOM_LOG")
            .map(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Off);
        Logger::new(level)
    }

    /// A logger capturing lines in memory (for tests); read them back with
    /// [`Logger::captured`].
    pub fn capture(level: LogLevel) -> Logger {
        Logger {
            level,
            sink: Arc::new(Sink::Buffer(Mutex::new(Vec::new()))),
        }
    }

    /// The configured level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether events at `level` would be emitted. Call sites use this to
    /// skip formatting work entirely when logging is off.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level != LogLevel::Off && level <= self.level
    }

    /// Emits one structured line:
    /// `ts=<unix-seconds> level=<level> component=<component> k=v …`.
    /// Values containing spaces, quotes, or `=` are double-quoted with
    /// backslash escapes.
    pub fn log(&self, level: LogLevel, component: &str, fields: &[(&str, &str)]) {
        if !self.enabled(level) {
            return;
        }
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let mut line = format!("ts={ts:.3} level={} component={component}", level.as_str());
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            if v.is_empty() || v.contains([' ', '"', '=', '\n']) {
                line.push('"');
                for c in v.chars() {
                    match c {
                        '"' => line.push_str("\\\""),
                        '\\' => line.push_str("\\\\"),
                        '\n' => line.push_str("\\n"),
                        c => line.push(c),
                    }
                }
                line.push('"');
            } else {
                line.push_str(v);
            }
        }
        match &*self.sink {
            Sink::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
            Sink::Buffer(buf) => buf.lock().expect("log buffer lock").push(line),
        }
    }

    /// Shorthand for [`LogLevel::Info`] events.
    pub fn info(&self, component: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Info, component, fields);
    }

    /// Shorthand for [`LogLevel::Debug`] events.
    pub fn debug(&self, component: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Debug, component, fields);
    }

    /// Lines captured so far (empty for stderr loggers).
    pub fn captured(&self) -> Vec<String> {
        match &*self.sink {
            Sink::Stderr => Vec::new(),
            Sink::Buffer(buf) => buf.lock().expect("log buffer lock").clone(),
        }
    }
}

impl Default for Logger {
    /// The default logger is silent.
    fn default() -> Logger {
        Logger::new(LogLevel::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(LogLevel::parse("info"), LogLevel::Info);
        assert_eq!(LogLevel::parse(" DEBUG "), LogLevel::Debug);
        assert_eq!(LogLevel::parse("warn"), LogLevel::Off);
        assert_eq!(LogLevel::parse(""), LogLevel::Off);
        assert!(LogLevel::Off < LogLevel::Info && LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn off_logger_emits_nothing() {
        let log = Logger::capture(LogLevel::Off);
        log.info("http", &[("route", "/v1/completions")]);
        log.debug("batch", &[]);
        assert!(log.captured().is_empty());
        assert!(!log.enabled(LogLevel::Info));
    }

    #[test]
    fn info_logger_filters_debug() {
        let log = Logger::capture(LogLevel::Info);
        log.info("http", &[("status", "200")]);
        log.debug("batch", &[("occupancy", "4")]);
        let lines = log.captured();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("level=info component=http status=200"),
            "{}",
            lines[0]
        );
        assert!(lines[0].starts_with("ts="));
    }

    #[test]
    fn values_with_spaces_are_quoted_and_escaped() {
        let log = Logger::capture(LogLevel::Debug);
        log.info("http", &[("err", "bad \"body\" a=b"), ("n", "3")]);
        let line = log.captured().remove(0);
        assert!(line.contains(r#"err="bad \"body\" a=b" n=3"#), "{line}");
    }

    #[test]
    fn clones_share_the_sink() {
        let log = Logger::capture(LogLevel::Info);
        let clone = log.clone();
        clone.info("worker", &[("event", "ready")]);
        assert_eq!(log.captured().len(), 1);
    }
}
