//! Completion requests: turning editor state + intent into the model
//! prompt, the way the paper's VS Code plugin does.

/// A completion request from an editor or API client.
///
/// # Examples
///
/// ```
/// use wisdom_core::CompletionRequest;
///
/// let req = CompletionRequest::new("---\n- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n", "start nginx");
/// let prompt = req.prompt_text();
/// assert!(prompt.ends_with("- name: start nginx\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompletionRequest {
    /// The editor buffer so far (may be empty).
    pub context: String,
    /// The natural-language intent the user typed after `- name:`.
    pub prompt: String,
}

impl CompletionRequest {
    /// Creates a request.
    pub fn new(context: impl Into<String>, prompt: impl Into<String>) -> Self {
        Self {
            context: context.into(),
            prompt: prompt.into(),
        }
    }

    /// Infers where the next `- name:` line belongs: inside a play's task
    /// list when the context looks like a playbook, at top level otherwise.
    pub fn name_indent(&self) -> usize {
        // Prefer the indentation of the last task already present.
        for line in self.context.lines().rev() {
            let trimmed = line.trim_start_matches(' ');
            if trimmed.starts_with("- name:") {
                return line.len() - trimmed.len();
            }
        }
        // A playbook context without tasks yet: nest under `tasks:`.
        for line in self.context.lines().rev() {
            let trimmed = line.trim_start_matches(' ');
            if trimmed == "tasks:" {
                return (line.len() - trimmed.len()) + 2;
            }
        }
        0
    }

    /// The body indentation implied by [`CompletionRequest::name_indent`].
    pub fn body_indent(&self) -> usize {
        self.name_indent() + 2
    }

    /// The full model input: context, then the name-completion line.
    pub fn prompt_text(&self) -> String {
        let mut out = self.context.clone();
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(&" ".repeat(self.name_indent()));
        out.push_str("- name: ");
        out.push_str(self.prompt.trim());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_context_prompts_at_top_level() {
        let r = CompletionRequest::new("", "install nginx");
        assert_eq!(r.name_indent(), 0);
        assert_eq!(r.prompt_text(), "- name: install nginx\n");
    }

    #[test]
    fn task_file_context_keeps_indent() {
        let r =
            CompletionRequest::new("---\n- name: first\n  ansible.builtin.ping: {}\n", "second");
        assert_eq!(r.name_indent(), 0);
        assert!(r.prompt_text().ends_with("- name: second\n"));
    }

    #[test]
    fn playbook_context_nests_tasks() {
        let r = CompletionRequest::new("---\n- hosts: all\n  tasks:\n", "ping it");
        assert_eq!(r.name_indent(), 4);
        assert!(r.prompt_text().ends_with("    - name: ping it\n"));
    }

    #[test]
    fn playbook_with_existing_task_matches_its_indent() {
        let r = CompletionRequest::new(
            "---\n- hosts: all\n  tasks:\n    - name: first\n      ansible.builtin.ping: {}\n",
            "second",
        );
        assert_eq!(r.name_indent(), 4);
    }

    #[test]
    fn missing_trailing_newline_is_fixed() {
        let r = CompletionRequest::new("---\n- name: a\n  ansible.builtin.ping: {}", "b");
        let p = r.prompt_text();
        assert!(p.contains("{}\n- name: b\n"));
    }

    #[test]
    fn intent_is_trimmed() {
        let r = CompletionRequest::new("", "  spaced out  ");
        assert_eq!(r.prompt_text(), "- name: spaced out\n");
    }
}
