//! Suggestion post-processing: truncation, reconstruction and lint feedback
//! for a raw model generation.

use wisdom_ansible::{lint_str, LintTarget, Violation};

use crate::service::CompletionRequest;

/// A processed completion suggestion, ready to paste into the editor.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The pasteable snippet: the `- name:` line plus the generated body,
    /// indented for the request's context.
    pub snippet: String,
    /// The generated body only (without the name line).
    pub body: String,
    /// Whether the reconstructed task passes the strict schema.
    pub schema_correct: bool,
    /// Lint findings on the reconstructed task (empty when clean).
    pub lint: Vec<Violation>,
}

impl Suggestion {
    /// Builds a suggestion from a raw model generation: strips special
    /// tokens, truncates to the first generated task, reconstructs the full
    /// snippet, and lints it.
    pub fn from_raw(request: &CompletionRequest, raw: &str) -> Suggestion {
        let name_indent = request.name_indent();
        let body = truncate_first_task(raw, name_indent);
        let snippet = format!(
            "{}- name: {}\n{}",
            " ".repeat(name_indent),
            request.prompt.trim(),
            body
        );
        // Lint the de-indented standalone form.
        let doc = deindent_block(&snippet, name_indent);
        let lint = lint_str(&doc, LintTarget::TaskFile);
        Suggestion {
            schema_correct: lint.is_empty(),
            snippet,
            body,
            lint,
        }
    }
}

/// Keeps only the first generated task: stops at special tokens, document
/// markers, or a dedent back to (or above) the name line's level.
pub fn truncate_first_task(raw: &str, name_indent: usize) -> String {
    let mut text = raw;
    for marker in ["<|endoftext|>", "<|sep|>", "<|pad|>"] {
        if let Some(pos) = text.find(marker) {
            text = &text[..pos];
        }
    }
    let mut out = String::new();
    for line in text.lines() {
        let trimmed = line.trim_end();
        if trimmed.trim() == "---" {
            break;
        }
        if trimmed.trim().is_empty() {
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start_matches(' ').len();
        if indent <= name_indent {
            break;
        }
        out.push_str(trimmed);
        out.push('\n');
    }
    out
}

fn deindent_block(text: &str, by: usize) -> String {
    if by == 0 {
        return text.to_string();
    }
    text.lines()
        .map(|l| {
            let strip = l
                .char_indices()
                .take_while(|(i, c)| *i < by && *c == ' ')
                .count();
            format!("{}\n", &l[strip..])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_raw_builds_schema_correct_snippet() {
        let req = CompletionRequest::new("", "Install nginx");
        let raw = "  ansible.builtin.apt:\n    name: nginx\n    state: present\n- name: extra\n  ping: {}\n";
        let s = Suggestion::from_raw(&req, raw);
        assert!(s.schema_correct, "{:?}", s.lint);
        assert_eq!(
            s.snippet,
            "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
        );
        assert!(!s.body.contains("extra"));
    }

    #[test]
    fn bad_generation_reports_lint() {
        let req = CompletionRequest::new("", "do something");
        let raw = "  not_a_real_module:\n    x: 1\n";
        let s = Suggestion::from_raw(&req, raw);
        assert!(!s.schema_correct);
        assert!(!s.lint.is_empty());
    }

    #[test]
    fn truncation_respects_nested_indent() {
        let raw = "      ansible.builtin.ping: {}\n    - name: next\n";
        let body = truncate_first_task(raw, 4);
        assert_eq!(body, "      ansible.builtin.ping: {}\n");
    }

    #[test]
    fn empty_generation_is_not_schema_correct() {
        let req = CompletionRequest::new("", "nothing");
        let s = Suggestion::from_raw(&req, "");
        assert!(!s.schema_correct);
    }

    #[test]
    fn playbook_context_snippet_is_indented() {
        let req = CompletionRequest::new("---\n- hosts: all\n  tasks:\n", "ping it");
        let raw = "      ansible.builtin.ping: {}\n";
        let s = Suggestion::from_raw(&req, raw);
        assert!(s.snippet.starts_with("    - name: ping it\n"));
        assert!(s.schema_correct, "{:?}", s.lint);
    }
}
