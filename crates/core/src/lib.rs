//! Ansible Wisdom — the paper's system as a library.
//!
//! [`Wisdom`] is the end-to-end pipeline: corpus → tokenizer → YAML
//! pre-training → Galaxy fine-tuning → a natural-language→Ansible-YAML
//! completion service with schema feedback, exactly the loop behind the
//! paper's VS Code plugin ("when a user writes the prompt for the task …
//! and hits enter, we invoke the API to carry out the prediction and then
//! take the results and paste it back on the editor").
//!
//! # Examples
//!
//! ```no_run
//! use wisdom_core::{Wisdom, WisdomConfig};
//!
//! let wisdom = Wisdom::train(&WisdomConfig::tiny(), None);
//! let suggestion = wisdom.complete_task("", "install nginx");
//! println!("{}", suggestion.snippet);
//! ```

mod pipeline;
mod service;
mod suggestion;

pub use pipeline::{TrainPhase, Wisdom, WisdomConfig};
pub use service::CompletionRequest;
pub use suggestion::Suggestion;
pub use wisdom_model::{
    BatchConfig, BatchScheduler, BatchTelemetry, Constraint, DecodeRequest, DraftKind,
    GrammarIndex, GrammarStats, GrammarTelemetry, Pending, PoolStats, Precision, PrefixCacheStats,
    PrefixCacheTelemetry, QuantTelemetry, ReplicaPool, ReplicaTelemetry, SchedulerStats,
    SpeculativeConfig, SpeculativeTelemetry, StreamingPending, SubmitError,
};

/// Lints a whole document (playbook or task file, auto-detected) with the
/// strict Schema Correct checker — the service-level entry point used by
/// the REST API's `/v1/lint` endpoint.
///
/// # Examples
///
/// ```
/// let findings = wisdom_core::lint_document("- name: ok\n  ansible.builtin.ping: {}\n");
/// assert!(findings.is_empty());
/// ```
pub fn lint_document(content: &str) -> Vec<wisdom_ansible::Violation> {
    wisdom_ansible::lint_str(content, wisdom_ansible::LintTarget::Auto)
}
