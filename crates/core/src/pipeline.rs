//! The build pipeline: everything between "no model" and "a serving Wisdom
//! assistant", mirroring §4 of the paper at configurable scale.

use std::sync::{Arc, OnceLock};

use wisdom_corpus::{Corpus, CorpusSpec, PromptStyle, SplitSamples};
use wisdom_model::{
    finetune, pack_documents, pretrain, BatchConfig, BatchScheduler, Constraint, FinetuneConfig,
    GenerationOptions, GrammarIndex, ModelConfig, PretrainConfig, SftSample, SubmitError,
    TransformerLm,
};
use wisdom_prng::Prng;
use wisdom_tokenizer::BpeTokenizer;

use crate::service::CompletionRequest;
use crate::suggestion::Suggestion;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WisdomConfig {
    /// Master seed (whole pipeline is deterministic in it).
    pub seed: u64,
    /// Divisor on the paper's corpus sizes.
    pub corpus_scale: usize,
    /// BPE vocabulary size.
    pub vocab_size: usize,
    /// Context window in tokens.
    pub context_window: usize,
    /// Pre-training epochs over the YAML corpus.
    pub pretrain_epochs: usize,
    /// Fine-tuning epochs over Galaxy samples.
    pub finetune_epochs: usize,
    /// Batch size for both phases.
    pub batch_size: usize,
    /// Pre-training peak learning rate.
    pub pretrain_lr: f32,
    /// Fine-tuning peak learning rate.
    pub finetune_lr: f32,
    /// Generation budget per completion.
    pub max_new_tokens: usize,
}

impl WisdomConfig {
    /// Seconds-scale configuration for tests and doc examples.
    pub fn tiny() -> WisdomConfig {
        WisdomConfig {
            seed: 0xBEE,
            corpus_scale: 16_000,
            vocab_size: 420,
            context_window: 48,
            pretrain_epochs: 1,
            finetune_epochs: 2,
            batch_size: 4,
            pretrain_lr: 3e-3,
            finetune_lr: 2e-3,
            max_new_tokens: 56,
        }
    }

    /// Minutes-scale configuration producing a genuinely usable assistant
    /// (release builds).
    pub fn standard() -> WisdomConfig {
        WisdomConfig {
            seed: 0xBEE,
            corpus_scale: 2_000,
            vocab_size: 1_000,
            context_window: 128,
            pretrain_epochs: 3,
            finetune_epochs: 5,
            batch_size: 8,
            pretrain_lr: 3e-3,
            finetune_lr: 1e-3,
            max_new_tokens: 140,
        }
    }
}

impl Default for WisdomConfig {
    fn default() -> Self {
        WisdomConfig::standard()
    }
}

/// Training phase reported to progress callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainPhase {
    /// Building the corpus and splits.
    Corpus,
    /// Training the tokenizer.
    Tokenizer,
    /// YAML pre-training.
    Pretrain,
    /// Galaxy fine-tuning.
    Finetune,
}

/// The trained Ansible Wisdom assistant.
pub struct Wisdom {
    config: WisdomConfig,
    tokenizer: Arc<BpeTokenizer>,
    model: TransformerLm,
    /// Compiled grammar indices, one slot per non-`None` [`Constraint`],
    /// built against the tokenizer on first use and shared by every request
    /// decoding under that constraint.
    grammars: [OnceLock<Arc<GrammarIndex>>; 2],
}

impl Wisdom {
    /// Runs the full pipeline: build corpus, train tokenizer, pre-train on
    /// Ansible + generic YAML (the Wisdom-Yaml recipe), fine-tune on Galaxy
    /// samples with the name-completion prompt.
    pub fn train(
        config: &WisdomConfig,
        mut progress: Option<&mut dyn FnMut(TrainPhase, usize, usize)>,
    ) -> Wisdom {
        let mut notify = |phase: TrainPhase, step: usize, total: usize| {
            if let Some(cb) = progress.as_deref_mut() {
                cb(phase, step, total);
            }
        };
        notify(TrainPhase::Corpus, 0, 1);
        let corpus = Corpus::build(&CorpusSpec::scaled(config.seed, config.corpus_scale));
        let split = SplitSamples::build(&corpus.galaxy, config.seed);

        notify(TrainPhase::Tokenizer, 0, 1);
        let mut tok_texts: Vec<&str> = Vec::new();
        tok_texts.extend(corpus.galaxy.iter().take(250).map(String::as_str));
        tok_texts.extend(corpus.github_ansible.iter().take(250).map(String::as_str));
        tok_texts.extend(corpus.generic.iter().take(200).map(String::as_str));
        let tokenizer = Arc::new(BpeTokenizer::train(
            tok_texts.iter().copied(),
            config.vocab_size,
        ));

        notify(TrainPhase::Pretrain, 0, 1);
        let mut rng = Prng::seed_from_u64(config.seed ^ 0x00d5);
        let model_cfg = ModelConfig::size_350m(tokenizer.vocab_size(), config.context_window);
        let mut model = TransformerLm::new(model_cfg, &mut rng);
        let mut docs: Vec<Vec<u32>> = corpus
            .ansible_pretrain()
            .iter()
            .map(|d| tokenizer.encode(d))
            .collect();
        docs.extend(corpus.generic.iter().map(|d| tokenizer.encode(d)));
        let mut order = Prng::seed_from_u64(config.seed ^ 0x77);
        order.shuffle(&mut docs);
        let stream = pack_documents(&docs, tokenizer.sep());
        {
            let mut fwd = |s: usize, t: usize, _l: f32| notify(TrainPhase::Pretrain, s, t);
            pretrain(
                &mut model,
                &stream,
                &PretrainConfig {
                    epochs: config.pretrain_epochs,
                    batch_size: config.batch_size,
                    lr: config.pretrain_lr,
                    max_grad_norm: 1.0,
                    seed: config.seed,
                },
                Some(&mut fwd),
            );
        }

        notify(TrainPhase::Finetune, 0, 1);
        let sft: Vec<SftSample> = split
            .train
            .iter()
            .map(|s| SftSample {
                prompt: tokenizer.encode(&s.prompt_text(PromptStyle::NameCompletion)),
                completion: tokenizer.encode(&s.expected),
            })
            .collect();
        {
            let mut fwd = |s: usize, t: usize, _l: f32| notify(TrainPhase::Finetune, s, t);
            finetune(
                &mut model,
                &sft,
                tokenizer.eot(),
                tokenizer.pad(),
                &FinetuneConfig {
                    epochs: config.finetune_epochs,
                    batch_size: config.batch_size,
                    lr: config.finetune_lr,
                    max_grad_norm: 1.0,
                    seed: config.seed,
                    ..Default::default()
                },
                Some(&mut fwd),
            );
        }
        Wisdom {
            config: *config,
            tokenizer,
            model,
            grammars: [OnceLock::new(), OnceLock::new()],
        }
    }

    /// Wraps pre-built parts (used by tests and by checkpoint loading).
    pub fn from_parts(
        config: WisdomConfig,
        tokenizer: Arc<BpeTokenizer>,
        model: TransformerLm,
    ) -> Wisdom {
        Wisdom {
            config,
            tokenizer,
            model,
            grammars: [OnceLock::new(), OnceLock::new()],
        }
    }

    /// The compiled grammar for `constraint`, built against this
    /// assistant's tokenizer on first use and cached for every later
    /// request. `None` for [`Constraint::None`].
    pub fn grammar_for(&self, constraint: Constraint) -> Option<Arc<GrammarIndex>> {
        let slot = match constraint {
            Constraint::None => return None,
            Constraint::Yaml => &self.grammars[0],
            Constraint::Ansible => &self.grammars[1],
        };
        Some(Arc::clone(slot.get_or_init(|| {
            GrammarIndex::build(&self.tokenizer, constraint)
                .expect("non-None constraints always compile")
        })))
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &WisdomConfig {
        &self.config
    }

    /// The shared tokenizer.
    pub fn tokenizer(&self) -> &Arc<BpeTokenizer> {
        &self.tokenizer
    }

    /// The underlying language model.
    pub fn model(&self) -> &TransformerLm {
        &self.model
    }

    /// Decoding options for serving requests (greedy, per the paper's
    /// evaluation setting).
    fn generation_options(&self) -> GenerationOptions {
        GenerationOptions {
            max_new_tokens: self.config.max_new_tokens,
            ..Default::default()
        }
    }

    fn suggest(&self, request: &CompletionRequest, out: &[u32]) -> Suggestion {
        Suggestion::from_raw(request, &self.tokenizer.decode(out))
    }

    /// Completes a request: builds the name-completion prompt from the
    /// editor context and intent, generates greedily, truncates to the
    /// first task, and lints the result.
    pub fn complete(&self, request: &CompletionRequest) -> Suggestion {
        self.complete_constrained(request, Constraint::None)
    }

    /// [`Wisdom::complete`] decoding under `constraint`: every sampled
    /// token is masked through the compiled grammar, so the suggestion
    /// parses (and for [`Constraint::Ansible`] lints clean) by
    /// construction. [`Constraint::None`] is exactly [`Wisdom::complete`].
    pub fn complete_constrained(
        &self,
        request: &CompletionRequest,
        constraint: Constraint,
    ) -> Suggestion {
        let ids = self.tokenizer.encode(&request.prompt_text());
        let stops = [self.tokenizer.eot(), self.tokenizer.sep()];
        let grammar = self.grammar_for(constraint);
        let out = self.model.generate_constrained(
            &ids,
            &stops,
            &self.generation_options(),
            grammar.as_ref(),
            None,
        );
        self.suggest(request, &out)
    }

    /// Starts a continuous-batching decode scheduler over this assistant's
    /// model (one worker multiplexing concurrent requests onto shared
    /// batched forward passes; see [`BatchScheduler`]). The model weights
    /// are cloned once into the scheduler, not per request.
    pub fn scheduler(&self, cfg: BatchConfig) -> BatchScheduler {
        self.scheduler_with(cfg, None)
    }

    /// [`Wisdom::scheduler`] with metric handles: the scheduler records
    /// queue wait, TTFT, per-round decode latency, occupancy, and
    /// admitted/completed/shed/wakeup counts into `telemetry`.
    pub fn scheduler_with(
        &self,
        cfg: BatchConfig,
        telemetry: Option<wisdom_model::BatchTelemetry>,
    ) -> BatchScheduler {
        self.scheduler_full(cfg, telemetry, None, None)
    }

    /// [`Wisdom::scheduler_with`] also recording speculative-decoding
    /// metrics (proposed/accepted/rejected counters, acceptance-length
    /// histogram, draft-overhead timer) when
    /// [`BatchConfig::speculative`] is enabled, and weight-quantization
    /// metrics (resident/saved bytes, quantized-matmul share) into
    /// `quant_telemetry`. A non-default [`BatchConfig::precision`] converts
    /// the scheduler's model copy at spawn — this assistant's own model
    /// stays f32.
    pub fn scheduler_full(
        &self,
        cfg: BatchConfig,
        telemetry: Option<wisdom_model::BatchTelemetry>,
        spec_telemetry: Option<wisdom_model::SpeculativeTelemetry>,
        quant_telemetry: Option<wisdom_model::QuantTelemetry>,
    ) -> BatchScheduler {
        self.scheduler_instrumented(cfg, telemetry, spec_telemetry, quant_telemetry, None)
    }

    /// [`Wisdom::scheduler_full`] also recording grammar-constrained
    /// decoding metrics (masked-token counts, mask-build latency, cached
    /// states, forced fast-path hits) into `grammar_telemetry`.
    pub fn scheduler_instrumented(
        &self,
        cfg: BatchConfig,
        telemetry: Option<wisdom_model::BatchTelemetry>,
        spec_telemetry: Option<wisdom_model::SpeculativeTelemetry>,
        quant_telemetry: Option<wisdom_model::QuantTelemetry>,
        grammar_telemetry: Option<wisdom_model::GrammarTelemetry>,
    ) -> BatchScheduler {
        BatchScheduler::spawn_full(
            Arc::new(self.model.clone()),
            cfg,
            telemetry,
            spec_telemetry,
            quant_telemetry,
            grammar_telemetry,
        )
    }

    /// Spawns `n` independent [`BatchScheduler`] replicas over this
    /// assistant's model (one weights `Arc` shared by all f32 replicas),
    /// attaching `telemetry[i]` to replica `i`. Each replica gets its own
    /// prefix cache, queue, and decode worker — the serving layer's
    /// prefix-affinity router places requests across them.
    pub fn replica_pool(
        &self,
        cfg: BatchConfig,
        n: usize,
        telemetry: &[wisdom_model::ReplicaTelemetry],
    ) -> wisdom_model::ReplicaPool {
        wisdom_model::ReplicaPool::spawn_with(Arc::new(self.model.clone()), cfg, n, telemetry)
    }

    /// [`Wisdom::complete`] through a [`BatchScheduler`]: enqueues the
    /// request and blocks for the result. The suggestion is identical to
    /// the direct path (batched decode is bit-for-bit deterministic).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the scheduler's bounded queue is at
    /// capacity (callers shed load, e.g. HTTP 503), [`SubmitError::ShutDown`]
    /// after scheduler shutdown.
    pub fn try_complete_batched(
        &self,
        request: &CompletionRequest,
        scheduler: &BatchScheduler,
    ) -> Result<Suggestion, SubmitError> {
        self.try_complete_batched_constrained(request, scheduler, Constraint::None)
    }

    /// [`Wisdom::try_complete_batched`] decoding under `constraint`: the
    /// submitted request carries the compiled grammar, so the scheduler
    /// masks every pick through it.
    ///
    /// # Errors
    ///
    /// Same as [`Wisdom::try_complete_batched`].
    pub fn try_complete_batched_constrained(
        &self,
        request: &CompletionRequest,
        scheduler: &BatchScheduler,
        constraint: Constraint,
    ) -> Result<Suggestion, SubmitError> {
        let pending = scheduler.submit(self.decode_request_constrained(request, constraint))?;
        Ok(self.suggest(request, &pending.wait()))
    }

    /// The token-level [`wisdom_model::DecodeRequest`] this assistant would
    /// decode for `request`: prompt encoding, serving stop tokens, and the
    /// configured generation options. Submitting it to any scheduler or
    /// replica yields exactly the tokens [`Wisdom::complete`] decodes —
    /// this is the request a multi-replica router places.
    pub fn decode_request(&self, request: &CompletionRequest) -> wisdom_model::DecodeRequest {
        self.decode_request_constrained(request, Constraint::None)
    }

    /// [`Wisdom::decode_request`] decoding under `constraint`: the request
    /// carries the compiled grammar, so whichever scheduler or replica
    /// decodes it masks every pick through it. The server resolves each
    /// HTTP request's `"constraint"` field (default: the configured one)
    /// and builds its decode requests here.
    pub fn decode_request_constrained(
        &self,
        request: &CompletionRequest,
        constraint: Constraint,
    ) -> wisdom_model::DecodeRequest {
        wisdom_model::DecodeRequest {
            prompt: self.tokenizer.encode(&request.prompt_text()),
            stops: vec![self.tokenizer.eot(), self.tokenizer.sep()],
            opts: self.generation_options(),
            grammar: self.grammar_for(constraint),
        }
    }

    /// Builds the finished [`Suggestion`] for `request` from generated
    /// token ids (the streaming path accumulates tokens itself and
    /// finalizes here; identical to what [`Wisdom::complete`] returns for
    /// the same output).
    pub fn suggestion_from_tokens(&self, request: &CompletionRequest, out: &[u32]) -> Suggestion {
        self.suggest(request, out)
    }

    /// Decodes a single generated token id to text — the per-event payload
    /// of the SSE streaming path. Byte-level BPE means a token ending mid
    /// UTF-8 sequence decodes lossily on its own; the stream's final event
    /// therefore carries the full suggestion decoded at once, and *that* is
    /// the bit-identical artifact. (The YAML corpus is ASCII, so per-token
    /// text is exact in practice.)
    pub fn token_text(&self, token: u32) -> String {
        self.tokenizer.decode(&[token])
    }

    /// Convenience wrapper: complete a task intent against an editor
    /// buffer.
    pub fn complete_task(&self, context: &str, intent: &str) -> Suggestion {
        self.complete(&CompletionRequest::new(context, intent))
    }

    /// Serializes the whole assistant (config + tokenizer + model weights)
    /// to a single text artifact. The round trip is bit-exact.
    pub fn save(&self) -> String {
        let c = &self.config;
        format!(
            "wisdom-assistant v1 seed={} corpus_scale={} vocab={} ctx={} pt_epochs={} ft_epochs={} batch={} max_new={}\n=== tokenizer ===\n{}=== model ===\n{}",
            c.seed,
            c.corpus_scale,
            c.vocab_size,
            c.context_window,
            c.pretrain_epochs,
            c.finetune_epochs,
            c.batch_size,
            c.max_new_tokens,
            self.tokenizer.to_text(),
            wisdom_model::save_checkpoint(&self.model),
        )
    }

    /// Restores an assistant from [`Wisdom::save`] output.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first problem found.
    pub fn load(text: &str) -> Result<Wisdom, String> {
        let (header, rest) = text
            .split_once("\n=== tokenizer ===\n")
            .ok_or("missing tokenizer section")?;
        let (tok_text, model_text) = rest
            .split_once("=== model ===\n")
            .ok_or("missing model section")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("wisdom-assistant") || fields.next() != Some("v1") {
            return Err(format!("bad header: {header}"));
        }
        let mut get = |key: &str| -> Result<usize, String> {
            fields
                .next()
                .and_then(|f| f.strip_prefix(key))
                .and_then(|v| v.strip_prefix('='))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("missing header field {key}"))
        };
        let config = WisdomConfig {
            seed: get("seed")? as u64,
            corpus_scale: get("corpus_scale")?,
            vocab_size: get("vocab")?,
            context_window: get("ctx")?,
            pretrain_epochs: get("pt_epochs")?,
            finetune_epochs: get("ft_epochs")?,
            batch_size: get("batch")?,
            pretrain_lr: 0.0, // learning rates are irrelevant post-training
            finetune_lr: 0.0,
            max_new_tokens: get("max_new")?,
        };
        let tokenizer = Arc::new(BpeTokenizer::from_text(tok_text).map_err(|e| e.to_string())?);
        let model = wisdom_model::load_checkpoint(model_text).map_err(|e| e.to_string())?;
        if model.config().vocab_size != tokenizer.vocab_size() {
            return Err(format!(
                "model vocab {} does not match tokenizer vocab {}",
                model.config().vocab_size,
                tokenizer.vocab_size()
            ));
        }
        Ok(Wisdom {
            config,
            tokenizer,
            model,
            grammars: [OnceLock::new(), OnceLock::new()],
        })
    }
}

impl std::fmt::Debug for Wisdom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wisdom")
            .field("config", &self.config)
            .field("vocab", &self.tokenizer.vocab_size())
            .field("params", &self.model.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_trains_and_completes() {
        let mut phases = Vec::new();
        let mut cb = |p: TrainPhase, _s: usize, _t: usize| {
            if phases.last() != Some(&p) {
                phases.push(p);
            }
        };
        let wisdom = Wisdom::train(&WisdomConfig::tiny(), Some(&mut cb));
        assert_eq!(
            phases,
            vec![
                TrainPhase::Corpus,
                TrainPhase::Tokenizer,
                TrainPhase::Pretrain,
                TrainPhase::Finetune
            ]
        );
        let s = wisdom.complete_task("", "Install nginx");
        // A tiny model may produce poor YAML, but the plumbing must hold:
        // the snippet exists (possibly empty) and lint ran.
        assert!(s.snippet.len() < 4000);
    }

    #[test]
    fn save_load_round_trip_preserves_behaviour() {
        let wisdom = Wisdom::train(&WisdomConfig::tiny(), None);
        let saved = wisdom.save();
        let restored = Wisdom::load(&saved).expect("load");
        let a = wisdom.complete_task("", "Install nginx");
        let b = restored.complete_task("", "Install nginx");
        assert_eq!(a.snippet, b.snippet);
        assert_eq!(restored.config().vocab_size, wisdom.config().vocab_size);
    }

    #[test]
    fn load_rejects_corrupted_artifacts() {
        assert!(Wisdom::load("garbage").is_err());
        let wisdom = Wisdom::train(&WisdomConfig::tiny(), None);
        let saved = wisdom.save();
        let corrupted = saved.replace("=== model ===", "=== nothing ===");
        assert!(Wisdom::load(&corrupted).is_err());
    }

    #[test]
    fn deterministic_training() {
        let a = Wisdom::train(&WisdomConfig::tiny(), None);
        let b = Wisdom::train(&WisdomConfig::tiny(), None);
        let sa = a.complete_task("", "Install nginx");
        let sb = b.complete_task("", "Install nginx");
        assert_eq!(sa.snippet, sb.snippet);
    }
}
