//! Router placement properties: rendezvous stability under replica churn,
//! and prefix-affinity routing agreeing bit-for-bit with the
//! single-replica decode path under any request interleaving.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use wisdom_core::{BatchConfig, CompletionRequest, Wisdom, WisdomConfig};
use wisdom_server::{rendezvous_pick, Router, RouterConfig};

fn wisdom() -> &'static Wisdom {
    static WISDOM: OnceLock<Wisdom> = OnceLock::new();
    WISDOM.get_or_init(|| Wisdom::train(&WisdomConfig::tiny(), None))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replica join: going from `n` to `n + 1` replicas, every key either
    /// keeps its placement or moves to the new replica — never to another
    /// surviving one. This is what makes scale-out cheap: existing
    /// replicas keep their warm working sets.
    #[test]
    fn join_moves_keys_only_to_the_new_replica(
        keys in prop::collection::vec(prop::collection::vec(0u32..500, 1..12), 1..40),
        n in 1usize..6,
    ) {
        for key in &keys {
            let before = rendezvous_pick(key, n);
            let after = rendezvous_pick(key, n + 1);
            prop_assert!(
                after == before || after == n,
                "key {:?} moved {} -> {} on join of replica {}",
                key, before, after, n
            );
        }
    }

    /// Replica leave (draining the highest index): every key that was not
    /// on the leaver keeps exactly its placement.
    #[test]
    fn leave_of_the_last_replica_keeps_other_placements(
        keys in prop::collection::vec(prop::collection::vec(0u32..500, 1..12), 1..40),
        n in 2usize..7,
    ) {
        for key in &keys {
            let full = rendezvous_pick(key, n);
            if full < n - 1 {
                prop_assert_eq!(rendezvous_pick(key, n - 1), full);
            }
        }
    }
}

/// Join churn in aggregate: the moved fraction is ≈ 1/(n+1), not ~100%
/// like a mod-N hash. 2000 keys put the binomial noise far below the 2×
/// bounds asserted here.
#[test]
fn join_moves_a_bounded_fraction_of_keys() {
    let keys: Vec<Vec<u32>> = (0..2000u32)
        .map(|i| vec![i, i.wrapping_mul(7) + 1, i.wrapping_mul(13) + 5])
        .collect();
    for n in 1..5 {
        let moved = keys
            .iter()
            .filter(|k| rendezvous_pick(k, n + 1) != rendezvous_pick(k, n))
            .count();
        let expected = keys.len() / (n + 1);
        assert!(
            moved <= expected * 2,
            "n={n}: {moved} of {} keys moved, expected ≈{expected}",
            keys.len()
        );
        assert!(
            moved >= expected / 2,
            "n={n}: only {moved} keys moved; the hash is not spreading"
        );
    }
}

proptest! {
    // Each case spins up (and joins) a 2-replica pool, so keep the count
    // small; the interleavings inside a case do the exploring.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any interleaving of prompts (with heavy prefix sharing, so the
    /// affinity probe is exercised both cold and warm) and any mix of
    /// plain/streaming submission through a 2-replica affinity router
    /// yields outputs bit-identical to the single-replica direct path —
    /// routing must never change what is decoded, only where.
    #[test]
    fn affinity_routing_is_bit_identical_to_single_replica(
        picks in prop::collection::vec((0usize..5, 0usize..2), 1..8),
    ) {
        const PROMPTS: &[&str] = &[
            "install nginx",
            "install nginx and enable the service",
            "start nginx service",
            "create user deploy",
            "restart the docker daemon",
        ];
        let w = wisdom();
        let cfg = BatchConfig {
            max_batch_size: 2,
            queue_depth: 16,
            prefix_cache_bytes: 1 << 20,
            ..BatchConfig::default()
        };
        let pool = Arc::new(w.replica_pool(cfg, 2, &[]));
        let router = Router::new(Arc::clone(&pool), RouterConfig::default(), None);
        for &(which, streamed) in &picks {
            let prompt = PROMPTS[which];
            let request = CompletionRequest::new("", prompt);
            let decode = w.decode_request(&request);
            let expected = w.complete_task("", prompt);
            let out = if streamed == 1 {
                let stream = router.submit_streaming(decode).expect("submit");
                let tokens: Vec<u32> = stream.tokens.iter().collect();
                let out = stream.result.wait();
                prop_assert_eq!(&tokens, &out, "stream/result split-brain");
                out
            } else {
                router.submit(decode).expect("submit").wait()
            };
            let got = w.suggestion_from_tokens(&request, &out);
            prop_assert_eq!(&got.snippet, &expected.snippet, "prompt {:?}", prompt);
            prop_assert_eq!(&got.body, &expected.body, "prompt {:?}", prompt);
        }
        pool.shutdown();
    }
}
