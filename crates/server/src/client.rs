//! A tiny blocking client for the completions API, used by examples and
//! integration tests (the "editor plugin" side of the loop).

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{parse_json, Json};

/// A completion returned by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionResponse {
    /// The generated body (after the name line).
    pub completion: String,
    /// The pasteable snippet (name line + body).
    pub snippet: String,
    /// Whether the server's linter accepted it.
    pub schema_correct: bool,
    /// Lint findings (empty when clean).
    pub lint: Vec<String>,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Network failure.
    Io(std::io::Error),
    /// Server returned a non-200 status.
    Status(u16, String),
    /// Response was not the expected JSON.
    BadResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Status(code, body) => write!(f, "server returned {code}: {body}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
        }
    }
}

impl Error for ClientError {}

/// Lower-cased `(name, value)` response headers.
pub type ResponseHeaders = Vec<(String, String)>;

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Requests a completion from a running [`crate::WisdomServer`].
///
/// # Errors
///
/// Returns [`ClientError`] on connection, status, or decoding problems.
pub fn request_completion(
    addr: impl ToSocketAddrs,
    context: &str,
    prompt: &str,
) -> Result<CompletionResponse, ClientError> {
    let payload = Json::obj(vec![
        ("prompt", Json::Str(prompt.to_string())),
        ("context", Json::Str(context.to_string())),
    ])
    .to_text();
    let (status, body) = post(addr, "/v1/completions", &payload)?;
    if status != 200 {
        return Err(ClientError::Status(status, body));
    }
    let j = parse_json(&body).map_err(|e| ClientError::BadResponse(e.to_string()))?;
    let text = |key: &str| -> Result<String, ClientError> {
        j.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::BadResponse(format!("missing field {key}")))
    };
    let lint = match j.get("lint") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
        _ => Vec::new(),
    };
    Ok(CompletionResponse {
        completion: text("completion")?,
        snippet: text("snippet")?,
        schema_correct: j
            .get("schema_correct")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        lint,
    })
}

/// Performs one `POST` and returns `(status, body)`.
///
/// # Errors
///
/// Returns [`ClientError::Io`] on network failures.
pub fn post(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &str,
) -> Result<(u16, String), ClientError> {
    let (status, _headers, body) = post_raw(addr, path, body)?;
    Ok((status, body))
}

/// Performs one `GET` and returns `(status, body)`.
///
/// # Errors
///
/// Returns [`ClientError::Io`] on network failures.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> Result<(u16, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nhost: localhost\r\n\r\n")?;
    stream.flush()?;
    read_response(&mut stream).map(|(status, _headers, body)| (status, body))
}

/// Performs one `POST` and returns `(status, headers, body)` with the
/// lower-cased response headers (so tests can check `retry-after` on 503s).
///
/// # Errors
///
/// Returns [`ClientError::Io`] on network failures.
pub fn post_raw(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &str,
) -> Result<(u16, ResponseHeaders, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Reads a full HTTP response off `stream` and splits it into status,
/// lower-cased headers, and body.
fn read_response(stream: &mut TcpStream) -> Result<(u16, ResponseHeaders, String), ClientError> {
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::BadResponse("no status line".to_string()))?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, payload))
}
