//! A tiny blocking client for the completions API, used by examples and
//! integration tests (the "editor plugin" side of the loop).

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{parse_json, Json};

/// A completion returned by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionResponse {
    /// The generated body (after the name line).
    pub completion: String,
    /// The pasteable snippet (name line + body).
    pub snippet: String,
    /// Whether the server's linter accepted it.
    pub schema_correct: bool,
    /// Lint findings (empty when clean).
    pub lint: Vec<String>,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Network failure.
    Io(std::io::Error),
    /// Server returned a non-200 status.
    Status(u16, String),
    /// Response was not the expected JSON.
    BadResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Status(code, body) => write!(f, "server returned {code}: {body}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
        }
    }
}

impl Error for ClientError {}

/// Lower-cased `(name, value)` response headers.
pub type ResponseHeaders = Vec<(String, String)>;

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Requests a completion from a running [`crate::WisdomServer`].
///
/// # Errors
///
/// Returns [`ClientError`] on connection, status, or decoding problems.
pub fn request_completion(
    addr: impl ToSocketAddrs,
    context: &str,
    prompt: &str,
) -> Result<CompletionResponse, ClientError> {
    let payload = Json::obj(vec![
        ("prompt", Json::Str(prompt.to_string())),
        ("context", Json::Str(context.to_string())),
    ])
    .to_text();
    let (status, body) = post(addr, "/v1/completions", &payload)?;
    if status != 200 {
        return Err(ClientError::Status(status, body));
    }
    let j = parse_json(&body).map_err(|e| ClientError::BadResponse(e.to_string()))?;
    let text = |key: &str| -> Result<String, ClientError> {
        j.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::BadResponse(format!("missing field {key}")))
    };
    let lint = match j.get("lint") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
        _ => Vec::new(),
    };
    Ok(CompletionResponse {
        completion: text("completion")?,
        snippet: text("snippet")?,
        schema_correct: j
            .get("schema_correct")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        lint,
    })
}

/// Performs one `POST` and returns `(status, body)`.
///
/// # Errors
///
/// Returns [`ClientError::Io`] on network failures.
pub fn post(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &str,
) -> Result<(u16, String), ClientError> {
    let (status, _headers, body) = post_raw(addr, path, body)?;
    Ok((status, body))
}

/// Performs one `GET` and returns `(status, body)`.
///
/// # Errors
///
/// Returns [`ClientError::Io`] on network failures.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> Result<(u16, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nhost: localhost\r\n\r\n")?;
    stream.flush()?;
    read_response(&mut stream).map(|(status, _headers, body)| (status, body))
}

/// Performs one `POST` and returns `(status, headers, body)` with the
/// lower-cased response headers (so tests can check `retry-after` on 503s).
///
/// # Errors
///
/// Returns [`ClientError::Io`] on network failures.
pub fn post_raw(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &str,
) -> Result<(u16, ResponseHeaders, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(&mut stream)
}

/// A persistent keep-alive connection to the server: sequential requests
/// share one TCP socket, skipping per-request connection setup (the hot
/// path for an editor firing completion requests as the user types).
///
/// Every request advertises `connection: keep-alive`; responses are read
/// content-length framed (never to EOF), so the socket stays usable. The
/// server bounds requests per connection
/// (`ServerConfig::keepalive_max_requests`) and answers the last one with
/// `connection: close`; [`HttpConnection::post`] keeps working across that
/// by transparently reconnecting.
#[derive(Debug)]
pub struct HttpConnection {
    addr: std::net::SocketAddr,
    stream: Option<TcpStream>,
    /// Sockets this connection has opened in its lifetime (1 = every
    /// request so far reused the first socket). Tests assert on this.
    connects: usize,
}

impl HttpConnection {
    /// Opens a connection to the server.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<HttpConnection, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::BadResponse("unresolvable address".to_string()))?;
        let stream = TcpStream::connect(addr)?;
        Ok(HttpConnection {
            addr,
            stream: Some(stream),
            connects: 1,
        })
    }

    /// How many TCP sockets this connection has opened so far.
    pub fn connects(&self) -> usize {
        self.connects
    }

    /// Performs one `POST` on the persistent socket and returns
    /// `(status, headers, body)`.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on network or framing problems.
    pub fn post(
        &mut self,
        path: &str,
        body: &str,
    ) -> Result<(u16, ResponseHeaders, String), ClientError> {
        let request = format!(
            "POST {path} HTTP/1.1\r\nhost: localhost\r\nconnection: keep-alive\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.round_trip(&request)
    }

    /// Performs one `GET` on the persistent socket and returns
    /// `(status, headers, body)`.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on network or framing problems.
    pub fn get(&mut self, path: &str) -> Result<(u16, ResponseHeaders, String), ClientError> {
        let request =
            format!("GET {path} HTTP/1.1\r\nhost: localhost\r\nconnection: keep-alive\r\n\r\n");
        self.round_trip(&request)
    }

    fn round_trip(&mut self, request: &str) -> Result<(u16, ResponseHeaders, String), ClientError> {
        let stream = match &mut self.stream {
            Some(s) => s,
            None => {
                self.stream = Some(TcpStream::connect(self.addr)?);
                self.connects += 1;
                self.stream.as_mut().expect("just connected")
            }
        };
        stream.write_all(request.as_bytes())?;
        stream.flush()?;
        let (status, headers, body) = read_framed_response(stream)?;
        let closing = headers
            .iter()
            .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
        if closing {
            self.stream = None;
        }
        Ok((status, headers, body))
    }
}

/// Posts `body` to an SSE streaming endpoint and collects the `data:`
/// event payloads in arrival order (the final `[DONE]` marker excluded).
/// Non-200 responses come back as `(status, error body)` with no events.
///
/// # Errors
///
/// Returns [`ClientError`] on network or framing problems.
pub fn post_sse(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &str,
) -> Result<(u16, Vec<String>), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nhost: localhost\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let (status, headers, body) = read_framed_response(&mut stream)?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if !chunked {
        return Ok((status, vec![body]));
    }
    let events = body
        .split("\n\n")
        .filter_map(|e| e.strip_prefix("data: "))
        .filter(|payload| *payload != "[DONE]")
        .map(str::to_string)
        .collect();
    Ok((status, events))
}

/// Reads exactly one response without consuming past it: headers
/// byte-by-byte to the blank line, then a content-length body or chunked
/// chunks to the terminal zero chunk. This is what keeps a keep-alive
/// socket reusable — nothing beyond the response is pulled off the wire.
fn read_framed_response(
    stream: &mut TcpStream,
) -> Result<(u16, ResponseHeaders, String), ClientError> {
    let head = read_until_blank_line(stream)?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::BadResponse("no status line".to_string()))?;
    let headers: ResponseHeaders = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_string()))
        .collect();
    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let body = if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        let mut body = Vec::new();
        loop {
            let size_line = read_line_crlf(stream)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| ClientError::BadResponse(format!("bad chunk size {size_line:?}")))?;
            let mut chunk = vec![0u8; size + 2];
            stream.read_exact(&mut chunk)?;
            if size == 0 {
                break;
            }
            chunk.truncate(size);
            body.extend_from_slice(&chunk);
        }
        body
    } else {
        let length: usize = find("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ClientError::BadResponse("missing content-length".to_string()))?;
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body)?;
        body
    };
    Ok((status, headers, String::from_utf8_lossy(&body).into_owned()))
}

fn read_until_blank_line(stream: &mut TcpStream) -> Result<String, ClientError> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte)?;
        head.push(byte[0]);
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

fn read_line_crlf(stream: &mut TcpStream) -> Result<String, ClientError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while !line.ends_with(b"\r\n") {
        stream.read_exact(&mut byte)?;
        line.push(byte[0]);
    }
    Ok(String::from_utf8_lossy(&line).into_owned())
}

/// Reads a full HTTP response off `stream` and splits it into status,
/// lower-cased headers, and body.
fn read_response(stream: &mut TcpStream) -> Result<(u16, ResponseHeaders, String), ClientError> {
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::BadResponse("no status line".to_string()))?;
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, payload))
}
