//! REST inference service for Ansible Wisdom.
//!
//! The paper exposes the model behind a GRPC/REST API consumed by a VS Code
//! plugin. This crate is that serving layer, self-contained on `std::net`:
//! a minimal HTTP/1.1 server ([`WisdomServer`]), a tiny JSON codec, and a
//! blocking client ([`request_completion`]) playing the editor's role.
//!
//! # Examples
//!
//! ```no_run
//! use std::sync::Arc;
//! use wisdom_core::{Wisdom, WisdomConfig};
//! use wisdom_server::{request_completion, WisdomServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wisdom = Arc::new(Wisdom::train(&WisdomConfig::tiny(), None));
//! let server = WisdomServer::bind(wisdom, "127.0.0.1:0")?;
//! let handle = server.handle();
//! std::thread::spawn(move || server.serve());
//! let response = request_completion(handle.addr(), "", "install nginx")?;
//! println!("{}", response.snippet);
//! handle.stop();
//! # Ok(())
//! # }
//! ```

mod api;
mod client;
mod http;
mod json;
mod router;
mod telemetry;

pub use api::{route, route_full, route_with, ServerConfig, ServerHandle, WisdomServer};
pub use client::{
    get, post, post_raw, post_sse, request_completion, ClientError, CompletionResponse,
    HttpConnection,
};
pub use http::{
    finish_chunked, read_request, read_request_opt, write_sse_event, write_sse_head,
    ParseHttpError, Request, Response, MAX_BODY_BYTES,
};
pub use json::{parse_json, Json, ParseJsonError};
pub use router::{
    estimate_retry_after, rendezvous_pick, Placement, RoutePolicy, Router, RouterConfig,
    RouterTelemetry,
};
pub use telemetry::{ServerTelemetry, METRICS_CONTENT_TYPE};
