//! Server-side observability: one registry for the whole serving stack,
//! per-route request metrics, and the structured access log.
//!
//! [`ServerTelemetry`] is created at bind time and threaded through every
//! connection handler. It owns the [`Registry`] that `GET /metrics` renders
//! and the pre-resolved handle bundles the scheduler and prefix cache
//! record into, so one scrape sees the whole stack: HTTP, scheduler, decode
//! engine, and cache.

use std::sync::Arc;

use wisdom_core::{
    BatchTelemetry, GrammarTelemetry, PrefixCacheTelemetry, QuantTelemetry, ReplicaTelemetry,
    SpeculativeTelemetry,
};
use wisdom_telemetry::{Counter, Histogram, Logger, Registry};

/// The Prometheus text exposition content type served by `GET /metrics`.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Routes that get their own `route` label. Anything else is folded into
/// `"other"` so a path-scanning client cannot blow up label cardinality.
const KNOWN_ROUTES: &[&str] = &[
    "/v1/completions",
    "/v1/lint",
    "/v1/stats",
    "/metrics",
    "/healthz",
    "/readyz",
];

/// Canonical `route` label for a request path.
fn route_label(path: &str) -> &'static str {
    KNOWN_ROUTES
        .iter()
        .find(|r| **r == path)
        .copied()
        .unwrap_or("other")
}

/// All metric handles and the access log for one server instance. Cloning
/// is cheap and shares the underlying registry.
#[derive(Debug, Clone)]
pub struct ServerTelemetry {
    registry: Arc<Registry>,
    /// Scheduler/decode-engine handles, passed into the batch scheduler.
    pub batch: BatchTelemetry,
    /// Prefix-cache handles, attached to the scheduler's cache.
    pub prefix_cache: PrefixCacheTelemetry,
    /// Speculative-decoding handles, passed into the batch scheduler.
    pub speculative: SpeculativeTelemetry,
    /// Weight-quantization handles (resident/saved bytes, quantized-matmul
    /// share), passed into the batch scheduler.
    pub quant: QuantTelemetry,
    /// Grammar-constrained-decoding handles (masked tokens, mask-build
    /// latency, cached automaton states), passed into the batch scheduler.
    pub grammar: GrammarTelemetry,
    /// Structured access/error log (`WISDOM_LOG=info|debug`).
    pub logger: Logger,
    /// `wisdom_request_duration_seconds{route=…}`, pre-resolved per known
    /// route (last entry is `"other"`).
    request_duration: Vec<(&'static str, Arc<Histogram>)>,
    /// `wisdom_http_requests_total` — every request, any route or status.
    pub requests_total: Arc<Counter>,
    /// Time to first streamed SSE token, measured at the HTTP layer
    /// (includes queueing and prefill — what the editor user feels).
    pub stream_ttft: Arc<Histogram>,
    /// Gap between consecutive streamed SSE tokens of one response.
    pub stream_token: Arc<Histogram>,
}

impl ServerTelemetry {
    /// A fresh registry with the full serving-stack metric families
    /// registered, logging per the `WISDOM_LOG` environment variable.
    pub fn new() -> ServerTelemetry {
        ServerTelemetry::with_logger(Logger::from_env())
    }

    /// [`ServerTelemetry::new`] with an explicit logger (tests use a
    /// capturing one).
    pub fn with_logger(logger: Logger) -> ServerTelemetry {
        let registry = Arc::new(Registry::new());
        let batch = BatchTelemetry::register(&registry);
        let prefix_cache = PrefixCacheTelemetry::register(&registry);
        let speculative = SpeculativeTelemetry::register(&registry);
        let quant = QuantTelemetry::register(&registry);
        let grammar = GrammarTelemetry::register(&registry);
        let buckets = Histogram::latency_buckets();
        let request_duration = KNOWN_ROUTES
            .iter()
            .chain(std::iter::once(&"other"))
            .map(|route| {
                (
                    *route,
                    registry.histogram_with(
                        "wisdom_request_duration_seconds",
                        "End-to-end HTTP request latency by route.",
                        &[("route", route)],
                        &buckets,
                    ),
                )
            })
            .collect();
        let requests_total = registry.counter(
            "wisdom_http_requests_total",
            "HTTP requests handled, any route or status.",
        );
        let stream_ttft = registry.histogram(
            "wisdom_stream_ttft_seconds",
            "Time to first streamed token, measured at the HTTP layer.",
            &buckets,
        );
        let stream_token = registry.histogram(
            "wisdom_stream_token_seconds",
            "Gap between consecutive streamed tokens of one response.",
            &buckets,
        );
        ServerTelemetry {
            registry,
            batch,
            prefix_cache,
            speculative,
            quant,
            grammar,
            logger,
            request_duration,
            requests_total,
            stream_ttft,
            stream_token,
        }
    }

    /// Telemetry bundles for an `n`-replica pool. One replica reuses the
    /// unlabeled server-wide bundles (scrape output identical to the
    /// single-scheduler server); more than one registers a labeled
    /// `replica="i"` series set per replica in the same families, so one
    /// scrape shows both per-replica and (summed by the scraper)
    /// aggregate behavior.
    pub fn replica_bundles(&self, n: usize) -> Vec<ReplicaTelemetry> {
        if n <= 1 {
            return vec![ReplicaTelemetry {
                batch: Some(self.batch.clone()),
                prefix_cache: Some(self.prefix_cache.clone()),
                speculative: Some(self.speculative.clone()),
                quant: Some(self.quant.clone()),
                grammar: Some(self.grammar.clone()),
            }];
        }
        (0..n)
            .map(|i| {
                let idx = i.to_string();
                let labels: &[(&str, &str)] = &[("replica", &idx)];
                ReplicaTelemetry {
                    batch: Some(BatchTelemetry::register_labeled(&self.registry, labels)),
                    prefix_cache: Some(PrefixCacheTelemetry::register_labeled(
                        &self.registry,
                        labels,
                    )),
                    speculative: Some(SpeculativeTelemetry::register_labeled(
                        &self.registry,
                        labels,
                    )),
                    quant: Some(QuantTelemetry::register_labeled(&self.registry, labels)),
                    grammar: Some(GrammarTelemetry::register_labeled(&self.registry, labels)),
                }
            })
            .collect()
    }

    /// The registry backing `GET /metrics`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one handled request: duration histogram (by route), status
    /// counter (by route and status class), the total counter, and an
    /// info-level access-log line.
    pub fn observe_request(&self, method: &str, path: &str, status: u16, seconds: f64) {
        let route = route_label(path);
        self.requests_total.inc();
        let histogram = self
            .request_duration
            .iter()
            .find(|(r, _)| *r == route)
            .map(|(_, h)| h)
            .expect("every label folds into a pre-resolved route");
        histogram.observe(seconds);
        self.registry
            .counter_with(
                "wisdom_http_responses_total",
                "HTTP responses by route and status code.",
                &[("route", route), ("status", &status.to_string())],
            )
            .inc();
        self.logger.info(
            "http",
            &[
                ("method", method),
                ("path", path),
                ("route", route),
                ("status", &status.to_string()),
                ("duration_s", &format!("{seconds:.6}")),
            ],
        );
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl Default for ServerTelemetry {
    fn default() -> ServerTelemetry {
        ServerTelemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisdom_telemetry::{sample_value, LogLevel};

    #[test]
    fn observe_request_records_by_route_and_status() {
        let t = ServerTelemetry::with_logger(Logger::capture(LogLevel::Info));
        t.observe_request("POST", "/v1/completions", 200, 0.01);
        t.observe_request("POST", "/v1/completions", 503, 0.001);
        t.observe_request("GET", "/secret-probe", 404, 0.0001);
        let text = t.render();
        assert_eq!(
            sample_value(
                &text,
                "wisdom_request_duration_seconds_count{route=\"/v1/completions\"}"
            ),
            Some(2.0)
        );
        assert_eq!(
            sample_value(
                &text,
                "wisdom_http_responses_total{route=\"/v1/completions\",status=\"503\"}"
            ),
            Some(1.0)
        );
        // Unknown paths fold into "other" instead of minting new series.
        assert_eq!(
            sample_value(
                &text,
                "wisdom_http_responses_total{route=\"other\",status=\"404\"}"
            ),
            Some(1.0)
        );
        assert!(!text.contains("secret-probe"));
        assert_eq!(sample_value(&text, "wisdom_http_requests_total"), Some(3.0));

        let lines = t.logger.captured();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("component=http method=POST path=/v1/completions"));
        assert!(lines[1].contains("status=503"));
    }

    #[test]
    fn scheduler_and_cache_families_share_the_registry() {
        let t = ServerTelemetry::with_logger(Logger::capture(LogLevel::Off));
        t.batch.admitted.inc();
        t.prefix_cache.hits.inc();
        t.speculative.accepted.add(3);
        let text = t.render();
        assert_eq!(
            sample_value(&text, "wisdom_requests_admitted_total"),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&text, "wisdom_prefix_cache_hits_total"),
            Some(1.0)
        );
        assert_eq!(
            sample_value(&text, "wisdom_speculative_accepted_tokens_total"),
            Some(3.0)
        );
    }
}
