//! A minimal HTTP/1.1 server and request/response types over `std::net`,
//! sufficient for the completions REST API: persistent connections
//! (explicit `Connection: keep-alive`), chunked transfer encoding for the
//! SSE streaming path, no TLS.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (`/v1/completions`).
    pub path: String,
    /// Lower-cased header map.
    pub headers: HashMap<String, String>,
    /// Request body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: String,
    /// Extra headers (name, value), written verbatim.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON 200 response.
    pub fn json(text: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: text.into().into_bytes(),
        }
    }

    /// A plain-text response with a status code.
    pub fn text(status: u16, text: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain".to_string(),
            headers: Vec::new(),
            body: text.into().into_bytes(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Overrides the content type (e.g. the Prometheus exposition type on
    /// `GET /metrics`).
    #[must_use]
    pub fn with_content_type(mut self, content_type: impl Into<String>) -> Response {
        self.content_type = content_type.into();
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Writes the response to a stream, closing the connection afterwards.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        self.write_to_with(stream, false)
    }

    /// [`Self::write_to`] with an explicit connection disposition:
    /// `keep_alive` advertises `connection: keep-alive` so the client may
    /// send another request on the same socket (the body is always
    /// content-length framed, so the boundary is unambiguous either way).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to_with(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Writes the head of a chunked `text/event-stream` response — the SSE
/// streaming path of `POST /v1/completions`. Events follow via
/// [`write_sse_event`]; the stream ends with [`finish_chunked`]. Streaming
/// responses always close the connection: their length is unknown up
/// front, and the chunked framing already marks the end of the body.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_sse_head(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\ncache-control: no-cache\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one SSE event (`data: <payload>\n\n`) as a single HTTP chunk and
/// flushes, so the client sees the event as soon as the token exists.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_sse_event(stream: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let event = format!("data: {payload}\n\n");
    write!(stream, "{:x}\r\n", event.len())?;
    stream.write_all(event.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response (the zero-length chunk).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn finish_chunked(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Default request-body cap for [`read_request`] (1 MiB).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// HTTP parse failure, carrying the status code the server should answer
/// with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHttpError {
    /// Status code to report (400, 408, 411, 413).
    pub status: u16,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseHttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http parse error: {}", self.message)
    }
}

impl Error for ParseHttpError {}

fn bad(message: &str) -> ParseHttpError {
    status_err(400, message)
}

fn status_err(status: u16, message: &str) -> ParseHttpError {
    ParseHttpError {
        status,
        message: message.to_string(),
    }
}

fn io_err(e: &std::io::Error) -> ParseHttpError {
    // A read/write timeout surfaces as WouldBlock (or TimedOut on some
    // platforms); report it as such instead of a generic parse failure.
    let timed_out = matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    );
    if timed_out {
        status_err(408, "timed out reading request")
    } else {
        bad(&format!("io: {e}"))
    }
}

/// Reads one request from a stream, rejecting bodies over `max_body` bytes
/// with a 413-status error. Callers should set socket read timeouts so a
/// stalled client cannot pin the handler (see `WisdomServer`).
///
/// # Errors
///
/// Returns [`ParseHttpError`] on malformed or oversized requests, missing
/// `Content-Length` on a request with a body, or I/O failure/timeouts.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ParseHttpError> {
    match read_request_opt(stream, max_body)? {
        Some(request) => Ok(request),
        None => Err(bad("connection closed before a request")),
    }
}

/// [`read_request`] distinguishing a clean end of connection: returns
/// `Ok(None)` when the peer closed the socket before sending anything —
/// the normal way a keep-alive client finishes — instead of a parse error.
///
/// Requests must arrive one at a time (write, await the response, write the
/// next): each call builds a fresh buffered reader, so bytes of a pipelined
/// second request read ahead of the first would be lost. The server
/// advertises this by only honoring explicit `Connection: keep-alive`.
///
/// # Errors
///
/// Same as [`read_request`].
pub fn read_request_opt(
    stream: &mut TcpStream,
    max_body: usize,
) -> Result<Option<Request>, ParseHttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| io_err(&e))?;
    if n == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let mut headers = HashMap::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| io_err(&e))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            headers.insert(k.trim().to_lowercase(), v.trim().to_string());
        }
    }
    let length: usize = match headers.get("content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| status_err(411, "unparseable content-length"))?,
        // Without a length we would have to read until EOF/timeout, which a
        // slow client could drag out forever — require it on body-bearing
        // methods instead of blocking.
        None if matches!(method.as_str(), "POST" | "PUT" | "PATCH") => {
            return Err(status_err(411, "missing content-length"));
        }
        None => 0,
    };
    if length > max_body {
        return Err(status_err(
            413,
            &format!("body of {length} bytes exceeds the {max_body}-byte cap"),
        ));
    }
    let mut body = vec![0u8; length];
    if length > 0 {
        reader.read_exact(&mut body).map_err(|e| io_err(&e))?;
    }
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn request_round_trip_over_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn, MAX_BODY_BYTES).unwrap();
            Response::json("{\"ok\":true}").write_to(&mut conn).unwrap();
            req
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let body = "{\"prompt\":\"x\"}";
        write!(
            client,
            "POST /v1/completions HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        client.flush().unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.ends_with("{\"ok\":true}"));
        let req = handle.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/completions");
        assert_eq!(req.body_text(), body);
        assert_eq!(
            req.headers.get("content-type").map(String::as_str),
            Some("application/json")
        );
    }

    #[test]
    fn response_status_lines() {
        assert_eq!(Response::text(404, "x").reason(), "Not Found");
        assert_eq!(Response::text(413, "x").reason(), "Payload Too Large");
        assert_eq!(Response::text(503, "x").reason(), "Service Unavailable");
        assert_eq!(Response::json("{}").status, 200);
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        Response::text(503, "busy")
            .with_header("retry-after", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable"));
        assert!(text.contains("\r\nretry-after: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nbusy"), "{text}");
    }

    fn parse_error_for(raw: &str, max_body: usize) -> ParseHttpError {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(raw.as_bytes()).unwrap();
            c.flush().unwrap();
            c
        });
        let (mut conn, _) = listener.accept().unwrap();
        let err = read_request(&mut conn, max_body).unwrap_err();
        drop(client.join().unwrap());
        err
    }

    #[test]
    fn keep_alive_disposition_is_explicit() {
        let mut out = Vec::new();
        Response::json("{}").write_to_with(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nconnection: keep-alive\r\n"), "{text}");
        let mut out = Vec::new();
        Response::json("{}").write_to_with(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\nconnection: close\r\n"), "{text}");
    }

    #[test]
    fn sse_stream_is_well_formed_chunked() {
        let mut out = Vec::new();
        write_sse_head(&mut out).unwrap();
        write_sse_event(&mut out, "{\"token\":\"a\"}").unwrap();
        write_sse_event(&mut out, "[DONE]").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: text/event-stream\r\n"));
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        // Each event is one chunk: hex length, CRLF, `data: …\n\n`, CRLF.
        let event = "data: {\"token\":\"a\"}\n\n";
        assert!(
            text.contains(&format!("{:x}\r\n{event}\r\n", event.len())),
            "{text}"
        );
        assert!(text.ends_with("data: [DONE]\n\n\r\n0\r\n\r\n"), "{text}");
    }

    #[test]
    fn clean_eof_reads_as_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let c = TcpStream::connect(addr).unwrap();
            drop(c);
        });
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(read_request_opt(&mut conn, 1024).unwrap(), None);
        client.join().unwrap();
        // The strict variant reports the same condition as a 400.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || drop(TcpStream::connect(addr).unwrap()));
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(read_request(&mut conn, 1024).unwrap_err().status, 400);
        client.join().unwrap();
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let err = parse_error_for(
            "POST /v1/completions HTTP/1.1\r\ncontent-length: 99999\r\n\r\n",
            1024,
        );
        assert_eq!(err.status, 413);
    }

    #[test]
    fn post_without_length_is_rejected_with_411() {
        let err = parse_error_for("POST /v1/completions HTTP/1.1\r\n\r\n", 1024);
        assert_eq!(err.status, 411);
        let err = parse_error_for("POST /x HTTP/1.1\r\ncontent-length: soon\r\n\r\n", 1024);
        assert_eq!(err.status, 411);
    }

    #[test]
    fn get_without_length_still_parses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            c.flush().unwrap();
            c
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn, 1024).unwrap();
        drop(client.join().unwrap());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn stalled_body_times_out_with_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            // Promise a body, never send it.
            c.write_all(b"POST /v1/completions HTTP/1.1\r\ncontent-length: 10\r\n\r\n")
                .unwrap();
            c.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(300));
            c
        });
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        let err = read_request(&mut conn, 1024).unwrap_err();
        drop(client.join().unwrap());
        assert_eq!(err.status, 408);
    }
}
