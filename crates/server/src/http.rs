//! A minimal HTTP/1.1 server and request/response types over `std::net`,
//! sufficient for the completions REST API (no TLS, no chunked encoding).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (`/v1/completions`).
    pub path: String,
    /// Lower-cased header map.
    pub headers: HashMap<String, String>,
    /// Request body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON 200 response.
    pub fn json(text: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json".to_string(),
            body: text.into().into_bytes(),
        }
    }

    /// A plain-text response with a status code.
    pub fn text(status: u16, text: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain".to_string(),
            body: text.into().into_bytes(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        }
    }

    /// Writes the response to a stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// HTTP parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHttpError {
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseHttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http parse error: {}", self.message)
    }
}

impl Error for ParseHttpError {}

fn bad(message: &str) -> ParseHttpError {
    ParseHttpError {
        message: message.to_string(),
    }
}

/// Reads one request from a stream.
///
/// # Errors
///
/// Returns [`ParseHttpError`] on malformed requests or I/O failure.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseHttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| bad(&format!("io: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let mut headers = HashMap::new();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| bad(&format!("io: {e}")))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            headers.insert(k.trim().to_lowercase(), v.trim().to_string());
        }
    }
    let length: usize = headers
        .get("content-length")
        .map(|v| v.parse().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if length > 16 * 1024 * 1024 {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; length];
    if length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| bad(&format!("io: {e}")))?;
    }
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn request_round_trip_over_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            Response::json("{\"ok\":true}").write_to(&mut conn).unwrap();
            req
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let body = "{\"prompt\":\"x\"}";
        write!(
            client,
            "POST /v1/completions HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        client.flush().unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.ends_with("{\"ok\":true}"));
        let req = handle.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/completions");
        assert_eq!(req.body_text(), body);
        assert_eq!(
            req.headers.get("content-type").map(String::as_str),
            Some("application/json")
        );
    }

    #[test]
    fn response_status_lines() {
        assert_eq!(Response::text(404, "x").reason(), "Not Found");
        assert_eq!(Response::json("{}").status, 200);
    }
}
