//! Cache-aware request router over a [`ReplicaPool`].
//!
//! Each replica owns a private prefix KV cache, so *where* a request runs
//! decides whether its prompt prefill is warm or cold. The router probes
//! every replica's radix cache for the longest resident prefix of the
//! incoming prompt and places the request on the best match — editor
//! sessions that keep resending a growing buffer stick to one replica and
//! keep hitting its cache, instead of spraying their working set across
//! all caches and thrashing every one of them.
//!
//! When no replica holds any prefix (a brand-new session), placement falls
//! back to rendezvous hashing over the prompt head: deterministic, evenly
//! spread, and stable under replica churn (adding a replica only moves the
//! keys the new replica wins; removing the last one moves only its keys).
//! Ties and fallbacks prefer the least-loaded replica; a full replica
//! spills to the next-best candidate, and only when *every* queue is full
//! does the router shed with [`SubmitError::QueueFull`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use wisdom_core::{DecodeRequest, Pending, ReplicaPool, StreamingPending, SubmitError};
use wisdom_telemetry::{Counter, Registry};

/// How the router picks a replica for a fresh request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Longest cached-prefix match wins; rendezvous hash when no replica
    /// holds any prefix. The default, and the point of this module.
    PrefixAffinity,
    /// Cycle through replicas regardless of cache state. The baseline the
    /// serving benchmark compares affinity against.
    RoundRobin,
    /// Always rendezvous-hash the prompt head, never probe caches.
    Rendezvous,
}

/// Router tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Placement policy.
    pub policy: RoutePolicy,
    /// How many leading prompt tokens feed the rendezvous hash. A short
    /// head keeps hashing cheap and makes resends of a growing buffer
    /// hash identically (the head is the stable part of the prompt).
    pub hash_head: usize,
    /// Upper clamp for [`Router::retry_after_secs`] estimates.
    pub retry_after_max_secs: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            policy: RoutePolicy::PrefixAffinity,
            hash_head: 16,
            retry_after_max_secs: 30,
        }
    }
}

/// Where [`Router::decide`] wants a request to run, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Chosen replica index.
    pub replica: usize,
    /// Prompt tokens already resident in that replica's prefix cache
    /// (0 for hash/round-robin placements).
    pub matched_tokens: usize,
}

/// Router-level counters, one set per policy label.
#[derive(Debug, Clone)]
pub struct RouterTelemetry {
    /// Requests routed (successfully placed on some replica).
    pub requests: Arc<Counter>,
    /// Sum of cached prompt tokens found at the chosen replica — divide by
    /// `requests` for mean warm-prefix length.
    pub prefix_matched_tokens: Arc<Counter>,
    /// Placements that spilled past the first-choice replica because its
    /// queue was full.
    pub overflow_reroutes: Arc<Counter>,
    /// Requests shed because every replica's queue was full.
    pub shed: Arc<Counter>,
}

impl RouterTelemetry {
    /// Registers the router families in `registry` under a `policy` label.
    pub fn register(registry: &Registry, policy: &str) -> RouterTelemetry {
        let labels: &[(&str, &str)] = &[("policy", policy)];
        RouterTelemetry {
            requests: registry.counter_with(
                "wisdom_router_requests_total",
                "Requests placed on a replica by the router.",
                labels,
            ),
            prefix_matched_tokens: registry.counter_with(
                "wisdom_router_prefix_matched_tokens_total",
                "Prompt tokens found warm in the chosen replica's prefix cache.",
                labels,
            ),
            overflow_reroutes: registry.counter_with(
                "wisdom_router_overflow_reroutes_total",
                "Placements that spilled past a full first-choice replica.",
                labels,
            ),
            shed: registry.counter_with(
                "wisdom_router_shed_total",
                "Requests shed because every replica queue was full.",
                labels,
            ),
        }
    }
}

/// Routes requests across the replicas of a [`ReplicaPool`].
#[derive(Debug)]
pub struct Router {
    pool: Arc<ReplicaPool>,
    cfg: RouterConfig,
    rr: AtomicUsize,
    telemetry: Option<RouterTelemetry>,
}

impl Router {
    /// Wraps `pool` with routing `cfg`; pass telemetry to count decisions.
    pub fn new(
        pool: Arc<ReplicaPool>,
        cfg: RouterConfig,
        telemetry: Option<RouterTelemetry>,
    ) -> Router {
        Router {
            pool,
            cfg,
            rr: AtomicUsize::new(0),
            telemetry,
        }
    }

    /// The pool this router places requests on.
    pub fn pool(&self) -> &Arc<ReplicaPool> {
        &self.pool
    }

    /// The active routing policy.
    pub fn policy(&self) -> RoutePolicy {
        self.cfg.policy
    }

    /// Picks a replica for `prompt` without submitting anything. The
    /// returned placement is the *first choice*; submission may still
    /// spill to another replica if its queue is full.
    pub fn decide(&self, prompt: &[u32], max_new: usize) -> Placement {
        self.candidates(prompt, max_new)[0]
    }

    /// All replicas in preference order (best first) for `prompt`.
    fn candidates(&self, prompt: &[u32], max_new: usize) -> Vec<Placement> {
        let n = self.pool.len();
        match self.cfg.policy {
            RoutePolicy::RoundRobin => {
                let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
                (0..n)
                    .map(|i| Placement {
                        replica: (start + i) % n,
                        matched_tokens: 0,
                    })
                    .collect()
            }
            RoutePolicy::Rendezvous => self.hashed_order(prompt, n),
            RoutePolicy::PrefixAffinity => {
                let matches: Vec<usize> = (0..n)
                    .map(|i| self.pool.replica(i).cached_prefix_tokens(prompt, max_new))
                    .collect();
                if matches.iter().all(|&m| m == 0) {
                    return self.hashed_order(prompt, n);
                }
                // Longest resident prefix first; break ties toward the
                // shortest queue so two equally-warm replicas share load.
                let mut order: Vec<usize> = (0..n).collect();
                let load: Vec<usize> = (0..n)
                    .map(|i| {
                        let s = self.pool.replica(i).stats();
                        s.queue_depth + s.in_flight
                    })
                    .collect();
                order.sort_by(|&a, &b| {
                    matches[b]
                        .cmp(&matches[a])
                        .then(load[a].cmp(&load[b]))
                        .then(a.cmp(&b))
                });
                order
                    .into_iter()
                    .map(|i| Placement {
                        replica: i,
                        matched_tokens: matches[i],
                    })
                    .collect()
            }
        }
    }

    /// Replicas ordered by descending rendezvous score of the prompt head.
    fn hashed_order(&self, prompt: &[u32], n: usize) -> Vec<Placement> {
        let head = &prompt[..prompt.len().min(self.cfg.hash_head)];
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            rendezvous_score(head, b)
                .cmp(&rendezvous_score(head, a))
                .then(a.cmp(&b))
        });
        order
            .into_iter()
            .map(|i| Placement {
                replica: i,
                matched_tokens: 0,
            })
            .collect()
    }

    /// Places and submits `req`, spilling to later candidates when a queue
    /// is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when every replica shed the request;
    /// [`SubmitError::ShutDown`] as soon as any replica reports it.
    pub fn submit(&self, req: DecodeRequest) -> Result<Pending, SubmitError> {
        let candidates = self.candidates(&req.prompt, req.opts.max_new_tokens);
        self.place(&candidates, |replica| {
            self.pool.replica(replica).submit(req.clone())
        })
    }

    /// Like [`Router::submit`] but returns a token stream alongside the
    /// final result.
    ///
    /// # Errors
    ///
    /// Same as [`Router::submit`].
    pub fn submit_streaming(&self, req: DecodeRequest) -> Result<StreamingPending, SubmitError> {
        let candidates = self.candidates(&req.prompt, req.opts.max_new_tokens);
        self.place(&candidates, |replica| {
            self.pool.replica(replica).submit_streaming(req.clone())
        })
    }

    /// Shared placement loop: walk candidates best-first, stop on the
    /// first replica that accepts.
    fn place<T>(
        &self,
        candidates: &[Placement],
        mut submit: impl FnMut(usize) -> Result<T, SubmitError>,
    ) -> Result<T, SubmitError> {
        for (attempt, placement) in candidates.iter().enumerate() {
            match submit(placement.replica) {
                Ok(accepted) => {
                    if let Some(t) = &self.telemetry {
                        t.requests.inc();
                        t.prefix_matched_tokens.add(placement.matched_tokens as u64);
                        if attempt > 0 {
                            t.overflow_reroutes.inc();
                        }
                    }
                    return Ok(accepted);
                }
                Err(SubmitError::QueueFull) => continue,
                Err(SubmitError::ShutDown) => return Err(SubmitError::ShutDown),
            }
        }
        if let Some(t) = &self.telemetry {
            t.shed.inc();
        }
        Err(SubmitError::QueueFull)
    }

    /// Suggested client back-off when shedding: the smallest per-replica
    /// estimate of how long its current queue takes to drain, from queue
    /// depth × recent decode-token p50. Falls back to `fallback` seconds
    /// on a cold (never-decoded or uninstrumented) pool.
    pub fn retry_after_secs(&self, fallback: u64) -> u64 {
        self.pool
            .replicas()
            .iter()
            .map(|r| {
                estimate_retry_after(
                    r.stats().queue_depth,
                    r.decode_token_p50(),
                    fallback,
                    self.cfg.retry_after_max_secs,
                )
            })
            .min()
            .unwrap_or(fallback)
    }
}

/// FNV-1a 64 over the replica index then the head tokens — each replica
/// gets an independent score per key, the heart of rendezvous (HRW)
/// hashing.
fn rendezvous_score(head: &[u32], replica: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in (replica as u64).to_le_bytes() {
        eat(b);
    }
    for tok in head {
        for b in tok.to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// Rendezvous pick for `head` among `n` replicas: highest score wins,
/// ties to the lower index. Exposed for the stability proptests — adding
/// replica `n` only claims keys it now scores highest on, and removing
/// the last replica leaves every other key's winner unchanged.
pub fn rendezvous_pick(head: &[u32], n: usize) -> usize {
    (0..n)
        .max_by(|&a, &b| {
            rendezvous_score(head, a)
                .cmp(&rendezvous_score(head, b))
                .then(b.cmp(&a))
        })
        .unwrap_or(0)
}

/// Estimates how many seconds a shed client should wait before retrying:
/// the queued work ahead of it (`queue_depth` requests) times the recent
/// per-token decode p50, rounded up and clamped to `[1, max]`. With no
/// decode history yet (`p50` is `None`), returns `fallback` — a guess is
/// better than pretending an empty histogram means "instantly".
pub fn estimate_retry_after(queue_depth: usize, p50: Option<f64>, fallback: u64, max: u64) -> u64 {
    let Some(p50) = p50 else {
        return fallback.clamp(1, max);
    };
    let secs = (queue_depth as f64 * p50).ceil() as u64;
    secs.clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use wisdom_core::{BatchConfig, Wisdom, WisdomConfig};

    fn wisdom() -> &'static Wisdom {
        static WISDOM: OnceLock<Wisdom> = OnceLock::new();
        WISDOM.get_or_init(|| Wisdom::train(&WisdomConfig::tiny(), None))
    }

    fn pool(n: usize) -> Arc<ReplicaPool> {
        let cfg = BatchConfig {
            max_batch_size: 2,
            queue_depth: 4,
            prefix_cache_bytes: 1 << 20,
            ..BatchConfig::default()
        };
        Arc::new(wisdom().replica_pool(cfg, n, &[]))
    }

    #[test]
    fn estimator_falls_back_scales_and_clamps() {
        assert_eq!(estimate_retry_after(5, None, 3, 30), 3);
        assert_eq!(estimate_retry_after(0, None, 0, 30), 1);
        assert_eq!(estimate_retry_after(4, Some(0.5), 3, 30), 2);
        assert_eq!(estimate_retry_after(10, Some(0.01), 3, 30), 1);
        assert_eq!(estimate_retry_after(1000, Some(0.5), 3, 30), 30);
    }

    #[test]
    fn rendezvous_is_deterministic_and_in_range() {
        for n in 1..6 {
            for key in 0u32..40 {
                let head = [key, key + 1];
                let pick = rendezvous_pick(&head, n);
                assert!(pick < n);
                assert_eq!(pick, rendezvous_pick(&head, n));
            }
        }
    }

    #[test]
    fn affinity_routes_a_resend_to_the_warm_replica() {
        let pool = pool(2);
        let router = Router::new(Arc::clone(&pool), RouterConfig::default(), None);
        let req = wisdom().decode_request(&wisdom_core::CompletionRequest {
            context: String::new(),
            prompt: "install nginx and enable the service".to_string(),
        });
        // Warm exactly one replica, picked by the hash fallback.
        let first = router.decide(&req.prompt, req.opts.max_new_tokens);
        assert_eq!(first.matched_tokens, 0);
        let pending = router.submit(req.clone()).expect("submit");
        let _ = pending.wait();
        let second = router.decide(&req.prompt, req.opts.max_new_tokens);
        assert_eq!(second.replica, first.replica);
        assert!(
            second.matched_tokens > 0,
            "resend should find a warm prefix"
        );
        pool.shutdown();
    }

    #[test]
    fn round_robin_cycles_over_replicas() {
        let pool = pool(3);
        let cfg = RouterConfig {
            policy: RoutePolicy::RoundRobin,
            ..RouterConfig::default()
        };
        let router = Router::new(Arc::clone(&pool), cfg, None);
        let picks: Vec<usize> = (0..6)
            .map(|_| router.decide(&[1, 2, 3], 4).replica)
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        pool.shutdown();
    }

    #[test]
    fn full_first_choice_spills_and_total_outage_sheds() {
        let pool = pool(2);
        let registry = Registry::new();
        let telemetry = RouterTelemetry::register(&registry, "rendezvous");
        let cfg = RouterConfig {
            policy: RoutePolicy::Rendezvous,
            ..RouterConfig::default()
        };
        let router = Router::new(Arc::clone(&pool), cfg, Some(telemetry.clone()));
        let req = wisdom().decode_request(&wisdom_core::CompletionRequest {
            context: String::new(),
            prompt: "restart the docker daemon".to_string(),
        });
        // Saturate the hash-preferred replica: admission paused so the
        // worker cannot drain mid-test, then fill its bounded queue. The
        // parked jobs resolve to empty outputs at shutdown.
        let first = router.decide(&req.prompt, req.opts.max_new_tokens).replica;
        let mut parked = Vec::new();
        let fill = |replica: usize, parked: &mut Vec<wisdom_core::Pending>| {
            pool.replica(replica).set_admission_paused(true);
            loop {
                match pool.replica(replica).submit(req.clone()) {
                    Ok(p) => parked.push(p),
                    Err(SubmitError::QueueFull) => break,
                    Err(e) => panic!("unexpected submit error: {e:?}"),
                }
            }
        };
        fill(first, &mut parked);
        let pending = router.submit(req.clone()).expect("other replica accepts");
        let _ = pending.wait();
        assert_eq!(telemetry.overflow_reroutes.get(), 1);
        // Saturate the survivor too: now every candidate sheds.
        fill(1 - first, &mut parked);
        assert!(matches!(router.submit(req), Err(SubmitError::QueueFull)));
        assert_eq!(telemetry.shed.get(), 1);
        pool.shutdown();
        for p in parked {
            assert!(p.wait().is_empty(), "parked jobs resolve empty at shutdown");
        }
    }

    #[test]
    fn retry_after_uses_fallback_on_a_cold_pool() {
        let pool = pool(1);
        let router = Router::new(Arc::clone(&pool), RouterConfig::default(), None);
        assert_eq!(router.retry_after_secs(3), 3);
        pool.shutdown();
    }
}
