//! A minimal JSON codec for the completions API (object/array/string/
//! number/bool/null; UTF-8; standard escapes). Deliberately tiny — the API
//! payloads are flat objects.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys for deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object member accessor.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the problem.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseJsonError {}

/// Parses JSON text.
///
/// # Errors
///
/// Returns [`ParseJsonError`] on malformed input.
pub fn parse_json(text: &str) -> Result<Json, ParseJsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        text,
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseJsonError {
        ParseJsonError {
            position: self.i,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        match self.bytes.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseJsonError> {
        if self.text[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.i;
        while matches!(
            self.bytes.get(self.i),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.i += 1;
        }
        self.text[start..self.i]
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.bytes.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .text
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full character.
                    let c = self.text[self.i..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.i += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.i) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.i) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_object() {
        let j = Json::obj(vec![
            ("prompt", Json::Str("install nginx".into())),
            ("context", Json::Str("---\n- name: x\n".into())),
            ("n", Json::Num(3.0)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let text = j.to_text();
        assert_eq!(parse_json(&text).unwrap(), j);
    }

    #[test]
    fn escapes_survive() {
        let j = Json::Str("line\nbreak \"quoted\" \\slash\ttab".into());
        assert_eq!(parse_json(&j.to_text()).unwrap(), j);
    }

    #[test]
    fn unicode_survives() {
        let j = Json::Str("héllo ☃".into());
        assert_eq!(parse_json(&j.to_text()).unwrap(), j);
        assert_eq!(parse_json("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn arrays_and_nesting() {
        let text = r#"{"a":[1,2,{"b":[true,null]}]}"#;
        let j = parse_json(text).unwrap();
        assert_eq!(j.to_text(), text);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse_json("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(parse_json("-7").unwrap(), Json::Num(-7.0));
        assert_eq!(parse_json("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn accessors() {
        let j = parse_json(r#"{"s":"x","b":true}"#).unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(true));
        assert!(j.get("missing").is_none());
    }
}
