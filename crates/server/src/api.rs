//! The completions REST API: the offline counterpart of the paper's
//! GRPC/REST inference service behind the VS Code plugin.
//!
//! Endpoints:
//!
//! * `POST /v1/completions` with `{"prompt": "...", "context": "..."}` →
//!   `{"completion", "snippet", "schema_correct", "lint", "model"}`;
//! * `GET /healthz` → `ok`.

use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wisdom_core::{CompletionRequest, Wisdom};

use crate::http::{read_request, Request, Response};
use crate::json::{parse_json, Json};

/// The inference server: owns a trained [`Wisdom`] assistant and serves
/// completion requests over HTTP.
pub struct WisdomServer {
    wisdom: Arc<Wisdom>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

/// Handle for stopping a running server from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Asks the serving loop to stop (takes effect on the next connection).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = std::net::TcpStream::connect(self.addr);
    }
}

impl WisdomServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(wisdom: Arc<Wisdom>, addr: impl ToSocketAddrs) -> std::io::Result<WisdomServer> {
        Ok(WisdomServer {
            wisdom,
            listener: TcpListener::bind(addr)?,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A handle for stopping the server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.listener.local_addr().expect("bound listener"),
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serves until [`ServerHandle::stop`] is called. One thread per
    /// connection (completions are CPU-bound and short).
    pub fn serve(self) {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut conn) = conn else { continue };
            let wisdom = Arc::clone(&self.wisdom);
            std::thread::spawn(move || {
                let response = match read_request(&mut conn) {
                    Ok(request) => route(&wisdom, &request),
                    Err(e) => Response::text(400, e.to_string()),
                };
                let _ = response.write_to(&mut conn);
            });
        }
    }
}

/// Routes one request.
pub fn route(wisdom: &Wisdom, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok"),
        ("POST", "/v1/completions") => completions(wisdom, request),
        ("POST", "/v1/lint") => lint(request),
        ("POST", _) | ("GET", _) => Response::text(404, "unknown endpoint"),
        _ => Response::text(405, "method not allowed"),
    }
}

/// Lint-as-a-service: `{"content": "<yaml>"}` → schema findings. The same
/// strict checker that gates suggestions, exposed for editor integrations.
fn lint(request: &Request) -> Response {
    let payload = match parse_json(&request.body_text()) {
        Ok(p) => p,
        Err(e) => return Response::text(400, e.to_string()),
    };
    let Some(content) = payload.get("content").and_then(Json::as_str) else {
        return Response::text(400, "missing required field 'content'");
    };
    let violations = wisdom_core::lint_document(content);
    let findings = violations
        .iter()
        .map(|v| Json::Str(v.to_string()))
        .collect();
    Response::json(
        Json::obj(vec![
            ("schema_correct", Json::Bool(violations.is_empty())),
            ("findings", Json::Arr(findings)),
        ])
        .to_text(),
    )
}

fn completions(wisdom: &Wisdom, request: &Request) -> Response {
    let payload = match parse_json(&request.body_text()) {
        Ok(p) => p,
        Err(e) => return Response::text(400, e.to_string()),
    };
    let Some(prompt) = payload.get("prompt").and_then(Json::as_str) else {
        return Response::text(400, "missing required field 'prompt'");
    };
    let context = payload.get("context").and_then(Json::as_str).unwrap_or("");
    let suggestion = wisdom.complete(&CompletionRequest::new(context, prompt));
    let lint = suggestion
        .lint
        .iter()
        .map(|v| Json::Str(v.to_string()))
        .collect();
    Response::json(
        Json::obj(vec![
            ("completion", Json::Str(suggestion.body.clone())),
            ("snippet", Json::Str(suggestion.snippet.clone())),
            ("schema_correct", Json::Bool(suggestion.schema_correct)),
            ("lint", Json::Arr(lint)),
            ("model", Json::Str("wisdom".to_string())),
        ])
        .to_text(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::OnceLock;
    use wisdom_core::WisdomConfig;

    fn tiny_wisdom() -> Arc<Wisdom> {
        static WISDOM: OnceLock<Arc<Wisdom>> = OnceLock::new();
        WISDOM
            .get_or_init(|| Arc::new(Wisdom::train(&WisdomConfig::tiny(), None)))
            .clone()
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: HashMap::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_works() {
        let w = tiny_wisdom();
        let r = route(
            &w,
            &Request {
                method: "GET".to_string(),
                path: "/healthz".to_string(),
                headers: HashMap::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn completions_endpoint_returns_json() {
        let w = tiny_wisdom();
        let r = route(
            &w,
            &post("/v1/completions", r#"{"prompt":"install nginx"}"#),
        );
        assert_eq!(r.status, 200);
        let j = parse_json(&String::from_utf8(r.body).unwrap()).unwrap();
        assert!(j.get("completion").is_some());
        assert!(j.get("schema_correct").and_then(Json::as_bool).is_some());
        let snippet = j.get("snippet").and_then(Json::as_str).unwrap();
        assert!(snippet.starts_with("- name: install nginx"));
    }

    #[test]
    fn lint_endpoint_reports_findings() {
        let w = tiny_wisdom();
        let good = route(
            &w,
            &post(
                "/v1/lint",
                r#"{"content":"- name: ok\n  ansible.builtin.ping: {}\n"}"#,
            ),
        );
        assert_eq!(good.status, 200);
        let j = parse_json(&String::from_utf8(good.body).unwrap()).unwrap();
        assert_eq!(j.get("schema_correct").and_then(Json::as_bool), Some(true));

        let bad = route(
            &w,
            &post(
                "/v1/lint",
                r#"{"content":"- name: bad\n  not_a_module: {}\n"}"#,
            ),
        );
        let j = parse_json(&String::from_utf8(bad.body).unwrap()).unwrap();
        assert_eq!(j.get("schema_correct").and_then(Json::as_bool), Some(false));
        assert!(matches!(j.get("findings"), Some(Json::Arr(items)) if !items.is_empty()));
    }

    #[test]
    fn bad_requests_are_rejected() {
        let w = tiny_wisdom();
        assert_eq!(route(&w, &post("/v1/completions", "not json")).status, 400);
        assert_eq!(route(&w, &post("/v1/completions", "{}")).status, 400);
        assert_eq!(route(&w, &post("/nope", "{}")).status, 404);
    }
}
