//! The completions REST API: the offline counterpart of the paper's
//! GRPC/REST inference service behind the VS Code plugin.
//!
//! Endpoints:
//!
//! * `POST /v1/completions` with `{"prompt": "...", "context": "..."}` →
//!   `{"completion", "snippet", "schema_correct", "lint", "model"}`;
//! * `GET /v1/stats` → queue depth, in-flight batch size, and prefix-cache
//!   counters as JSON;
//! * `GET /metrics` → the full serving-stack registry in Prometheus text
//!   exposition format;
//! * `GET /healthz` → `ok` (liveness: never touches the model or a lock);
//! * `GET /readyz` → `ready`, or 503 until the decode worker is up.
//!
//! Completions accept `"stream": true` to switch the response to
//! server-sent events over chunked transfer encoding: one `data:` event
//! per decoded token, then a final event carrying the exact JSON object a
//! non-streaming request would have returned, then `data: [DONE]`.
//!
//! Completions also accept `"constraint": "none" | "yaml" | "ansible"` to
//! pick the grammar the decode is masked through per request
//! (unrecognized values get a 400); requests without the field decode
//! under [`ServerConfig::constraint`]. `GET /v1/stats` echoes the default
//! and the pool's grammar counters.
//!
//! With `ServerConfig::replicas` > 1, completions are spread over a
//! [`ReplicaPool`] by a cache-aware [`Router`]: each replica owns its own
//! decode worker and prefix KV cache, and requests are placed on the
//! replica already holding the longest prefix of their prompt.
//!
//! Connections are keep-alive when the client asks for it
//! (`Connection: keep-alive`), bounded by
//! `ServerConfig::keepalive_max_requests`; legacy read-to-EOF clients that
//! omit the header keep the old close-per-request behavior.

use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use wisdom_core::{
    BatchConfig, BatchScheduler, CompletionRequest, Constraint, Precision, ReplicaTelemetry,
    SchedulerStats, SpeculativeConfig, SubmitError, Suggestion, Wisdom,
};

use crate::http::{
    finish_chunked, read_request_opt, write_sse_event, write_sse_head, Request, Response,
    MAX_BODY_BYTES,
};
use crate::json::{parse_json, Json};
use crate::router::{estimate_retry_after, RoutePolicy, Router, RouterConfig, RouterTelemetry};
use crate::telemetry::{ServerTelemetry, METRICS_CONTENT_TYPE};

/// Server sizing and limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Connection-handler threads (fixed pool; a flood of connections
    /// queues instead of exhausting threads).
    pub worker_threads: usize,
    /// Sequences decoded together by the batch scheduler. `1` disables the
    /// scheduler and decodes directly on the handler thread.
    pub max_batch_size: usize,
    /// Bounded decode-queue depth; beyond it, completions get 503.
    pub queue_depth: usize,
    /// Request-body cap in bytes (over it: 413).
    pub max_body_bytes: usize,
    /// Socket read/write timeout per connection.
    pub io_timeout: Duration,
    /// `Retry-After` seconds advertised on 503 responses.
    pub retry_after_secs: u64,
    /// Byte budget for the scheduler's shared prefix KV cache; `0` disables
    /// prompt-prefix reuse across requests.
    pub prefix_cache_bytes: usize,
    /// Speculative-decoding sizing for greedy requests on the batched path;
    /// disabled by default (`max_draft` 0).
    pub speculative: SpeculativeConfig,
    /// Weight precision this replica serves at ([`Precision::Int8`] packs
    /// the scheduler's model copy to per-block int8 at startup); echoed in
    /// `GET /v1/stats`. Requires the batched path (`max_batch_size` > 1).
    pub precision: Precision,
    /// Default grammar constraint completions decode under; individual
    /// requests override it with a `"constraint"` field. Echoed in
    /// `GET /v1/stats`.
    pub constraint: Constraint,
    /// Independent scheduler replicas behind the router, each with its own
    /// decode worker and prefix KV cache sized by `prefix_cache_bytes`.
    /// Requires the batched path (`max_batch_size` > 1); clamped to ≥ 1.
    pub replicas: usize,
    /// How the router places completions over the replicas.
    pub route_policy: RoutePolicy,
    /// Requests served per keep-alive connection before the server answers
    /// with `connection: close` (bounds how long one client can pin a
    /// handler thread).
    pub keepalive_max_requests: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            worker_threads: 8,
            max_batch_size: 8,
            queue_depth: 32,
            max_body_bytes: MAX_BODY_BYTES,
            io_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            prefix_cache_bytes: 64 << 20,
            speculative: SpeculativeConfig::disabled(),
            precision: Precision::F32,
            constraint: Constraint::None,
            replicas: 1,
            route_policy: RoutePolicy::PrefixAffinity,
            keepalive_max_requests: 32,
        }
    }
}

/// The inference server: owns a trained [`Wisdom`] assistant and serves
/// completion requests over HTTP. Connections are handled by a fixed
/// worker pool; completions are multiplexed onto a continuous-batching
/// [`BatchScheduler`] (unless `max_batch_size` is 1).
pub struct WisdomServer {
    wisdom: Arc<Wisdom>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
    router: Option<Arc<Router>>,
    /// Per-replica telemetry bundles the pool's schedulers record into;
    /// `/v1/stats` sums quantization gauges across them.
    bundles: Arc<Vec<ReplicaTelemetry>>,
    telemetry: Arc<ServerTelemetry>,
    /// Test hook: while set, `GET /readyz` reports 503 regardless of the
    /// decode worker's actual state.
    forced_unready: Arc<AtomicBool>,
}

/// Handle for stopping a running server from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    router: Option<Arc<Router>>,
    telemetry: Arc<ServerTelemetry>,
    forced_unready: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Asks the serving loop to stop (takes effect on the next connection).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop.
        let _ = std::net::TcpStream::connect(self.addr);
    }

    /// The server's metric registry and access log.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.telemetry
    }

    /// Test hook: pause/resume admission from the decode queue into the
    /// running batch, making queue-overflow (503) behavior deterministic.
    #[doc(hidden)]
    pub fn set_admission_paused(&self, paused: bool) {
        if let Some(r) = &self.router {
            r.pool().set_admission_paused(paused);
        }
    }

    /// Test hook: force `GET /readyz` to 503 (`false`) or restore normal
    /// worker-derived readiness (`true`).
    #[doc(hidden)]
    pub fn set_ready(&self, ready: bool) {
        self.forced_unready.store(!ready, Ordering::SeqCst);
    }
}

impl WisdomServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) with default
    /// [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(wisdom: Arc<Wisdom>, addr: impl ToSocketAddrs) -> std::io::Result<WisdomServer> {
        Self::bind_with(wisdom, addr, ServerConfig::default())
    }

    /// Binds with explicit sizing/limits.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind_with(
        wisdom: Arc<Wisdom>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<WisdomServer> {
        Self::bind_with_telemetry(wisdom, addr, config, ServerTelemetry::new())
    }

    /// [`Self::bind_with`] with an explicit [`ServerTelemetry`] (tests
    /// inject one with a capturing logger). The scheduler and its prefix
    /// cache record into the same registry `GET /metrics` renders.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind_with_telemetry(
        wisdom: Arc<Wisdom>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        telemetry: ServerTelemetry,
    ) -> std::io::Result<WisdomServer> {
        let mut bundles = Vec::new();
        let router = (config.max_batch_size > 1).then(|| {
            let replicas = config.replicas.max(1);
            bundles = telemetry.replica_bundles(replicas);
            if !config.speculative.enabled() {
                // Match the single-scheduler server: no speculative series
                // movement when speculation is off.
                for bundle in &mut bundles {
                    bundle.speculative = None;
                }
            }
            let pool = wisdom.replica_pool(
                BatchConfig {
                    max_batch_size: config.max_batch_size,
                    queue_depth: config.queue_depth,
                    prefix_cache_bytes: config.prefix_cache_bytes,
                    speculative: config.speculative,
                    precision: config.precision,
                    constraint: config.constraint,
                },
                replicas,
                &bundles,
            );
            let label = match config.route_policy {
                RoutePolicy::PrefixAffinity => "prefix_affinity",
                RoutePolicy::RoundRobin => "round_robin",
                RoutePolicy::Rendezvous => "rendezvous",
            };
            let router_telemetry = RouterTelemetry::register(telemetry.registry(), label);
            Arc::new(Router::new(
                Arc::new(pool),
                RouterConfig {
                    policy: config.route_policy,
                    ..RouterConfig::default()
                },
                Some(router_telemetry),
            ))
        });
        Ok(WisdomServer {
            wisdom,
            listener: TcpListener::bind(addr)?,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
            router,
            bundles: Arc::new(bundles),
            telemetry: Arc::new(telemetry),
            forced_unready: Arc::new(AtomicBool::new(false)),
        })
    }

    /// A handle for stopping the server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.listener.local_addr().expect("bound listener"),
            shutdown: Arc::clone(&self.shutdown),
            router: self.router.clone(),
            telemetry: Arc::clone(&self.telemetry),
            forced_unready: Arc::clone(&self.forced_unready),
        }
    }

    /// Serves until [`ServerHandle::stop`] is called. Connections are
    /// dispatched to a fixed pool of `worker_threads` handlers; in-flight
    /// requests finish before `serve` returns.
    pub fn serve(self) {
        let WisdomServer {
            wisdom,
            listener,
            shutdown,
            config,
            router,
            bundles,
            telemetry,
            forced_unready,
        } = self;
        let workers = config.worker_threads.max(1);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let wisdom = &wisdom;
                let router = router.as_deref();
                let bundles = &bundles;
                let telemetry = &telemetry;
                let forced_unready = &forced_unready;
                scope.spawn(move || loop {
                    // Hold the receiver lock only while dequeuing.
                    let conn = rx.lock().expect("worker queue lock").recv();
                    let Ok(mut conn) = conn else { break };
                    handle_connection(
                        wisdom,
                        router,
                        bundles,
                        &config,
                        telemetry,
                        forced_unready,
                        &mut conn,
                    );
                });
            }
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                let _ = tx.send(conn);
            }
            // Disconnect the channel: workers drain queued connections and
            // exit, then the scope joins them.
            drop(tx);
        });
        if let Some(r) = &router {
            r.pool().shutdown();
        }
    }
}

/// Serves one connection: a keep-alive loop when the client asks for it
/// (bounded by `keepalive_max_requests`), one request otherwise. Streaming
/// completions take over the socket (SSE commits the connection to chunked
/// encoding) and always close afterwards.
fn handle_connection(
    wisdom: &Wisdom,
    router: Option<&Router>,
    bundles: &[ReplicaTelemetry],
    config: &ServerConfig,
    telemetry: &ServerTelemetry,
    forced_unready: &AtomicBool,
    conn: &mut TcpStream,
) {
    let _ = conn.set_read_timeout(Some(config.io_timeout));
    let _ = conn.set_write_timeout(Some(config.io_timeout));
    let mut served = 0usize;
    loop {
        let started = Instant::now();
        match read_request_opt(conn, config.max_body_bytes) {
            // Clean EOF between requests: the client is done.
            Ok(None) => break,
            Ok(Some(request)) => {
                served += 1;
                let ready = !forced_unready.load(Ordering::SeqCst)
                    && router.is_none_or(|r| r.pool().worker_ready());
                if wants_streaming(&request) {
                    let status = stream_completion(
                        wisdom,
                        router,
                        config.retry_after_secs,
                        config.constraint,
                        telemetry,
                        conn,
                        &request,
                    );
                    telemetry.observe_request(
                        &request.method,
                        &request.path,
                        status,
                        started.elapsed().as_secs_f64(),
                    );
                    break;
                }
                let keep =
                    wants_keep_alive(&request) && served < config.keepalive_max_requests.max(1);
                let response = respond(
                    wisdom,
                    router,
                    bundles,
                    config,
                    Some(telemetry),
                    ready,
                    &request,
                );
                let _ = response.write_to_with(conn, keep);
                telemetry.observe_request(
                    &request.method,
                    &request.path,
                    response.status,
                    started.elapsed().as_secs_f64(),
                );
                if !keep {
                    break;
                }
            }
            Err(e) => {
                let response = Response::text(e.status, e.to_string());
                let _ = response.write_to(conn);
                // No parsed path to attribute: folds into the "other" route.
                telemetry.observe_request("-", "-", e.status, started.elapsed().as_secs_f64());
                telemetry.logger.info(
                    "http",
                    &[("error", &e.to_string()), ("status", &e.status.to_string())],
                );
                break;
            }
        }
    }
}

/// Whether the client explicitly asked to reuse the connection. Absent
/// header means close — the pre-keep-alive clients read bodies to EOF and
/// would hang on a held-open socket.
fn wants_keep_alive(request: &Request) -> bool {
    request
        .headers
        .get("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
}

/// Whether this is a completion request with `"stream": true`.
fn wants_streaming(request: &Request) -> bool {
    request.method == "POST"
        && request.path == "/v1/completions"
        && parse_json(&request.body_text())
            .ok()
            .and_then(|p| p.get("stream").and_then(Json::as_bool))
            == Some(true)
}

/// Routes one request for the serving loop: pool-aware completions and
/// stats when a router is present, everything else via [`route_full`].
fn respond(
    wisdom: &Wisdom,
    router: Option<&Router>,
    bundles: &[ReplicaTelemetry],
    config: &ServerConfig,
    telemetry: Option<&ServerTelemetry>,
    ready: bool,
    request: &Request,
) -> Response {
    match (request.method.as_str(), request.path.as_str(), router) {
        ("POST", "/v1/completions", Some(router)) => completions_pooled(
            wisdom,
            router,
            config.retry_after_secs,
            config.constraint,
            request,
        ),
        ("GET", "/v1/stats", Some(router)) => pool_stats(router, bundles, config),
        _ => route_constrained(
            wisdom,
            None,
            config.retry_after_secs,
            config.constraint,
            telemetry,
            ready,
            request,
        ),
    }
}

/// Routes one request on the direct (unbatched) decode path.
pub fn route(wisdom: &Wisdom, request: &Request) -> Response {
    route_with(wisdom, None, 1, request)
}

/// Routes one request; completions go through `scheduler` when given, and a
/// full decode queue answers 503 with `Retry-After: retry_after_secs`.
pub fn route_with(
    wisdom: &Wisdom,
    scheduler: Option<&BatchScheduler>,
    retry_after_secs: u64,
    request: &Request,
) -> Response {
    let ready = scheduler.is_none_or(BatchScheduler::worker_ready);
    route_full(wisdom, scheduler, retry_after_secs, None, ready, request)
}

/// [`route_full`] with a default grammar constraint: completions without a
/// `"constraint"` field decode under `default_constraint` instead of
/// unconstrained.
fn route_constrained(
    wisdom: &Wisdom,
    scheduler: Option<&BatchScheduler>,
    retry_after_secs: u64,
    default_constraint: Constraint,
    telemetry: Option<&ServerTelemetry>,
    ready: bool,
    request: &Request,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok"),
        ("GET", "/readyz") => {
            if ready {
                Response::text(200, "ready")
            } else {
                Response::text(503, "decode worker is not ready")
                    .with_header("retry-after", retry_after_secs.to_string())
            }
        }
        ("GET", "/metrics") => match telemetry {
            Some(t) => Response::text(200, t.render()).with_content_type(METRICS_CONTENT_TYPE),
            None => Response::text(404, "metrics are not enabled on this server"),
        },
        ("GET", "/v1/stats") => stats(scheduler, telemetry, default_constraint),
        ("POST", "/v1/completions") => completions(
            wisdom,
            scheduler,
            retry_after_secs,
            default_constraint,
            request,
        ),
        ("POST", "/v1/lint") => lint(request),
        ("POST", _) | ("GET", _) => Response::text(404, "unknown endpoint"),
        _ => Response::text(405, "method not allowed"),
    }
}

/// The full router: [`route_with`] plus the observability surface. With a
/// [`ServerTelemetry`], `GET /metrics` renders the registry and
/// `GET /v1/stats` is served from the same registry handles; `ready` is
/// what `GET /readyz` reports (the caller derives it from the decode
/// worker, so a probe never touches the model or the scheduler lock).
pub fn route_full(
    wisdom: &Wisdom,
    scheduler: Option<&BatchScheduler>,
    retry_after_secs: u64,
    telemetry: Option<&ServerTelemetry>,
    ready: bool,
    request: &Request,
) -> Response {
    route_constrained(
        wisdom,
        scheduler,
        retry_after_secs,
        Constraint::None,
        telemetry,
        ready,
        request,
    )
}

/// Serving/load counters for dashboards and tests: scheduler queue depth
/// and in-flight batch size plus the prefix KV cache's hit/miss/evicted/
/// bytes counters. On the direct (scheduler-less) path everything reads as
/// idle/disabled. With a [`ServerTelemetry`], the numbers come from the
/// same registry handles `GET /metrics` renders (the JSON shape is
/// unchanged); without one, from the scheduler's internal snapshot.
fn stats(
    scheduler: Option<&BatchScheduler>,
    telemetry: Option<&ServerTelemetry>,
    default_constraint: Constraint,
) -> Response {
    let snapshot = match telemetry {
        // The registry handles are the instrumented sites' own updates;
        // reading them back keeps /v1/stats and /metrics telling one story.
        Some(t) => SchedulerStats {
            queue_depth: t.batch.queue_depth.get() as usize,
            in_flight: t.batch.batch_occupancy.get() as usize,
            wakeups: t.batch.wakeups.get(),
            prefix_cache: scheduler
                .is_some_and(|s| s.prefix_cache().is_some())
                .then(|| wisdom_core::PrefixCacheStats {
                    hits: t.prefix_cache.hits.get(),
                    misses: t.prefix_cache.misses.get(),
                    hit_tokens: t.prefix_cache.hit_tokens.get(),
                    evicted_segments: t.prefix_cache.evicted_segments.get(),
                    bytes: t.prefix_cache.bytes.get() as usize,
                    segments: t.prefix_cache.segments.get() as usize,
                    budget_bytes: t.prefix_cache.budget_bytes.get() as usize,
                }),
        },
        None => scheduler.map_or_else(SchedulerStats::default, BatchScheduler::stats),
    };
    let (max_batch_size, queue_capacity) = scheduler.map_or((1, 0), |s| {
        (s.config().max_batch_size, s.config().queue_depth)
    });
    let num = |n: usize| Json::Num(n as f64);
    let count = |n: u64| Json::Num(n as f64);
    let pc = snapshot.prefix_cache.unwrap_or_default();
    // The direct (scheduler-less) path never speculates.
    let spec = scheduler.map_or_else(SpeculativeConfig::disabled, |s| s.config().speculative);
    // The direct path always serves the assistant's own f32 weights.
    let precision = scheduler.map_or(Precision::F32, |s| s.config().precision);
    // The scheduler's configured default constraint wins when one exists
    // (it is what `bind_with` set from the `ServerConfig`).
    let constraint = scheduler.map_or(default_constraint, |s| s.config().constraint);
    let grammar = Json::obj(vec![
        ("constraint", Json::Str(constraint.as_str().to_string())),
        (
            "masked_tokens",
            count(telemetry.map_or(0, |t| t.grammar.masked_tokens.get())),
        ),
        (
            "forced_tokens",
            count(telemetry.map_or(0, |t| t.grammar.forced_fast_path.get())),
        ),
        (
            "states_cached",
            num(telemetry.map_or(0.0, |t| t.grammar.states_cached.get()) as usize),
        ),
    ]);
    let quant = Json::obj(match telemetry {
        Some(t) => vec![
            ("weight_bytes", num(t.quant.weight_bytes.get() as usize)),
            (
                "weight_bytes_saved",
                num(t.quant.weight_bytes_saved.get() as usize),
            ),
            ("matmuls_int8", count(t.quant.matmuls_int8.get())),
            ("matmuls_f32", count(t.quant.matmuls_f32.get())),
        ],
        None => vec![
            ("weight_bytes", num(0)),
            ("weight_bytes_saved", num(0)),
            ("matmuls_int8", count(0)),
            ("matmuls_f32", count(0)),
        ],
    });
    Response::json(
        Json::obj(vec![
            ("queue_depth", num(snapshot.queue_depth)),
            ("in_flight", num(snapshot.in_flight)),
            ("max_batch_size", num(max_batch_size)),
            ("queue_capacity", num(queue_capacity)),
            (
                "prefix_cache",
                Json::obj(vec![
                    ("enabled", Json::Bool(snapshot.prefix_cache.is_some())),
                    ("hits", count(pc.hits)),
                    ("misses", count(pc.misses)),
                    ("hit_tokens", count(pc.hit_tokens)),
                    ("evicted_segments", count(pc.evicted_segments)),
                    ("bytes", num(pc.bytes)),
                    ("segments", num(pc.segments)),
                    ("budget_bytes", num(pc.budget_bytes)),
                ]),
            ),
            (
                "speculative",
                Json::obj(vec![
                    ("enabled", Json::Bool(spec.enabled())),
                    ("k", num(spec.max_draft)),
                    ("draft", Json::Str(spec.draft_label().to_string())),
                ]),
            ),
            ("precision", Json::Str(precision.as_str().to_string())),
            ("quant", quant),
            ("grammar", grammar),
        ])
        .to_text(),
    )
}

/// Lint-as-a-service: `{"content": "<yaml>"}` → schema findings. The same
/// strict checker that gates suggestions, exposed for editor integrations.
fn lint(request: &Request) -> Response {
    let payload = match parse_json(&request.body_text()) {
        Ok(p) => p,
        Err(e) => return Response::text(400, e.to_string()),
    };
    let Some(content) = payload.get("content").and_then(Json::as_str) else {
        return Response::text(400, "missing required field 'content'");
    };
    let violations = wisdom_core::lint_document(content);
    let findings = violations
        .iter()
        .map(|v| Json::Str(v.to_string()))
        .collect();
    Response::json(
        Json::obj(vec![
            ("schema_correct", Json::Bool(violations.is_empty())),
            ("findings", Json::Arr(findings)),
        ])
        .to_text(),
    )
}

/// The `/v1/completions` response object. Shared by the non-streaming
/// response body and the final SSE event, which is what makes streamed and
/// non-streamed responses byte-identical.
fn completion_payload(suggestion: &Suggestion) -> Json {
    let lint = suggestion
        .lint
        .iter()
        .map(|v| Json::Str(v.to_string()))
        .collect();
    Json::obj(vec![
        ("completion", Json::Str(suggestion.body.clone())),
        ("snippet", Json::Str(suggestion.snippet.clone())),
        ("schema_correct", Json::Bool(suggestion.schema_correct)),
        ("lint", Json::Arr(lint)),
        ("model", Json::Str("wisdom".to_string())),
    ])
}

/// Parses the completion payload shared by all decode paths — including
/// the optional `"constraint"` field, resolved against the server's
/// configured default — or the 400 explaining what was wrong with it.
fn parse_completion(
    request: &Request,
    default_constraint: Constraint,
) -> Result<(CompletionRequest, Constraint), Response> {
    let payload =
        parse_json(&request.body_text()).map_err(|e| Response::text(400, e.to_string()))?;
    let Some(prompt) = payload.get("prompt").and_then(Json::as_str) else {
        return Err(Response::text(400, "missing required field 'prompt'"));
    };
    let context = payload.get("context").and_then(Json::as_str).unwrap_or("");
    let constraint = match payload.get("constraint") {
        None => default_constraint,
        Some(json) => {
            let Some(name) = json.as_str() else {
                return Err(Response::text(400, "field 'constraint' must be a string"));
            };
            name.parse::<Constraint>()
                .map_err(|e| Response::text(400, e))?
        }
    };
    Ok((CompletionRequest::new(context, prompt), constraint))
}

fn completions(
    wisdom: &Wisdom,
    scheduler: Option<&BatchScheduler>,
    retry_after_secs: u64,
    default_constraint: Constraint,
    request: &Request,
) -> Response {
    let (completion_request, constraint) = match parse_completion(request, default_constraint) {
        Ok(r) => r,
        Err(response) => return response,
    };
    let suggestion = match scheduler {
        Some(s) => {
            match wisdom.try_complete_batched_constrained(&completion_request, s, constraint) {
                Ok(suggestion) => suggestion,
                Err(e @ (SubmitError::QueueFull | SubmitError::ShutDown)) => {
                    let secs = estimate_retry_after(
                        s.stats().queue_depth,
                        s.decode_token_p50(),
                        retry_after_secs,
                        RouterConfig::default().retry_after_max_secs,
                    );
                    return Response::text(503, e.to_string())
                        .with_header("retry-after", secs.to_string());
                }
            }
        }
        None => wisdom.complete_constrained(&completion_request, constraint),
    };
    Response::json(completion_payload(&suggestion).to_text())
}

/// Router-placed completions: submit to the replica the router picks,
/// spill to others on overflow, 503 with an estimated `Retry-After` when
/// every replica is full.
fn completions_pooled(
    wisdom: &Wisdom,
    router: &Router,
    retry_after_fallback: u64,
    default_constraint: Constraint,
    request: &Request,
) -> Response {
    let (completion_request, constraint) = match parse_completion(request, default_constraint) {
        Ok(r) => r,
        Err(response) => return response,
    };
    match router.submit(wisdom.decode_request_constrained(&completion_request, constraint)) {
        Ok(pending) => {
            let suggestion = wisdom.suggestion_from_tokens(&completion_request, &pending.wait());
            Response::json(completion_payload(&suggestion).to_text())
        }
        Err(e) => Response::text(503, e.to_string()).with_header(
            "retry-after",
            router.retry_after_secs(retry_after_fallback).to_string(),
        ),
    }
}

/// Streams a completion as server-sent events, writing directly to the
/// socket: one `{"token": …}` event per decoded token, the exact
/// non-streaming JSON object as the final data event, then `[DONE]`.
/// Returns the status to log. Validation failures are written as ordinary
/// (non-chunked) responses before any SSE bytes commit the stream.
fn stream_completion(
    wisdom: &Wisdom,
    router: Option<&Router>,
    retry_after_fallback: u64,
    default_constraint: Constraint,
    telemetry: &ServerTelemetry,
    conn: &mut TcpStream,
    request: &Request,
) -> u16 {
    let reject = |conn: &mut TcpStream, response: Response| {
        let status = response.status;
        let _ = response.write_to(conn);
        status
    };
    let (completion_request, constraint) = match parse_completion(request, default_constraint) {
        Ok(r) => r,
        Err(response) => return reject(conn, response),
    };
    let Some(router) = router else {
        return reject(
            conn,
            Response::text(
                501,
                "streaming requires the batched scheduler (max_batch_size > 1)",
            ),
        );
    };
    let stream = match router
        .submit_streaming(wisdom.decode_request_constrained(&completion_request, constraint))
    {
        Ok(stream) => stream,
        Err(e) => {
            return reject(
                conn,
                Response::text(503, e.to_string()).with_header(
                    "retry-after",
                    router.retry_after_secs(retry_after_fallback).to_string(),
                ),
            );
        }
    };
    // From here the head has committed the connection to a chunked 200;
    // write failures (client gone) only abort the body.
    let started = Instant::now();
    if write_sse_head(conn).is_err() {
        let _ = stream.result.wait();
        return 200;
    }
    let mut previous: Option<Instant> = None;
    for token in stream.tokens.iter() {
        let now = Instant::now();
        match previous {
            None => telemetry
                .stream_ttft
                .observe(started.elapsed().as_secs_f64()),
            Some(p) => telemetry
                .stream_token
                .observe(now.duration_since(p).as_secs_f64()),
        }
        previous = Some(now);
        let event = Json::obj(vec![("token", Json::Str(wisdom.token_text(token)))]).to_text();
        if write_sse_event(conn, &event).is_err() {
            break;
        }
    }
    let suggestion = wisdom.suggestion_from_tokens(&completion_request, &stream.result.wait());
    let _ = write_sse_event(conn, &completion_payload(&suggestion).to_text());
    let _ = write_sse_event(conn, "[DONE]");
    let _ = finish_chunked(conn);
    200
}

/// `/v1/stats` over a replica pool: the single-scheduler JSON shape with
/// pool-summed values, plus `replica_count` and a per-replica breakdown.
fn pool_stats(router: &Router, bundles: &[ReplicaTelemetry], config: &ServerConfig) -> Response {
    let agg = router.pool().aggregate();
    let num = |n: usize| Json::Num(n as f64);
    let count = |n: u64| Json::Num(n as f64);
    let pc = agg.prefix_cache.unwrap_or_default();
    let quant_bundles = || bundles.iter().filter_map(|b| b.quant.as_ref());
    let grammar_bundles = || bundles.iter().filter_map(|b| b.grammar.as_ref());
    let replicas = agg
        .replicas
        .iter()
        .map(|s| {
            let rpc = s.prefix_cache.unwrap_or_default();
            Json::obj(vec![
                ("queue_depth", num(s.queue_depth)),
                ("in_flight", num(s.in_flight)),
                ("wakeups", count(s.wakeups)),
                ("prefix_cache_hits", count(rpc.hits)),
                ("prefix_cache_bytes", num(rpc.bytes)),
            ])
        })
        .collect();
    Response::json(
        Json::obj(vec![
            ("queue_depth", num(agg.queue_depth)),
            ("in_flight", num(agg.in_flight)),
            ("max_batch_size", num(config.max_batch_size)),
            ("queue_capacity", num(config.queue_depth)),
            (
                "prefix_cache",
                Json::obj(vec![
                    ("enabled", Json::Bool(agg.prefix_cache.is_some())),
                    ("hits", count(pc.hits)),
                    ("misses", count(pc.misses)),
                    ("hit_tokens", count(pc.hit_tokens)),
                    ("evicted_segments", count(pc.evicted_segments)),
                    ("bytes", num(pc.bytes)),
                    ("segments", num(pc.segments)),
                    ("budget_bytes", num(pc.budget_bytes)),
                ]),
            ),
            (
                "speculative",
                Json::obj(vec![
                    ("enabled", Json::Bool(config.speculative.enabled())),
                    ("k", num(config.speculative.max_draft)),
                    (
                        "draft",
                        Json::Str(config.speculative.draft_label().to_string()),
                    ),
                ]),
            ),
            (
                "precision",
                Json::Str(config.precision.as_str().to_string()),
            ),
            (
                "quant",
                Json::obj(vec![
                    (
                        "weight_bytes",
                        num(quant_bundles().map(|q| q.weight_bytes.get()).sum::<f64>() as usize),
                    ),
                    (
                        "weight_bytes_saved",
                        num(quant_bundles()
                            .map(|q| q.weight_bytes_saved.get())
                            .sum::<f64>() as usize),
                    ),
                    (
                        "matmuls_int8",
                        count(quant_bundles().map(|q| q.matmuls_int8.get()).sum()),
                    ),
                    (
                        "matmuls_f32",
                        count(quant_bundles().map(|q| q.matmuls_f32.get()).sum()),
                    ),
                ]),
            ),
            (
                "grammar",
                Json::obj(vec![
                    (
                        "constraint",
                        Json::Str(config.constraint.as_str().to_string()),
                    ),
                    (
                        "masked_tokens",
                        count(grammar_bundles().map(|g| g.masked_tokens.get()).sum()),
                    ),
                    (
                        "forced_tokens",
                        count(grammar_bundles().map(|g| g.forced_fast_path.get()).sum()),
                    ),
                    (
                        "states_cached",
                        num(grammar_bundles()
                            .map(|g| g.states_cached.get())
                            .sum::<f64>() as usize),
                    ),
                ]),
            ),
            ("replica_count", num(router.pool().len())),
            ("replicas", Json::Arr(replicas)),
        ])
        .to_text(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::OnceLock;
    use wisdom_core::WisdomConfig;

    fn tiny_wisdom() -> Arc<Wisdom> {
        static WISDOM: OnceLock<Arc<Wisdom>> = OnceLock::new();
        WISDOM
            .get_or_init(|| Arc::new(Wisdom::train(&WisdomConfig::tiny(), None)))
            .clone()
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: HashMap::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_works() {
        let w = tiny_wisdom();
        let r = route(
            &w,
            &Request {
                method: "GET".to_string(),
                path: "/healthz".to_string(),
                headers: HashMap::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn completions_endpoint_returns_json() {
        let w = tiny_wisdom();
        let r = route(
            &w,
            &post("/v1/completions", r#"{"prompt":"install nginx"}"#),
        );
        assert_eq!(r.status, 200);
        let j = parse_json(&String::from_utf8(r.body).unwrap()).unwrap();
        assert!(j.get("completion").is_some());
        assert!(j.get("schema_correct").and_then(Json::as_bool).is_some());
        let snippet = j.get("snippet").and_then(Json::as_str).unwrap();
        assert!(snippet.starts_with("- name: install nginx"));
    }

    #[test]
    fn lint_endpoint_reports_findings() {
        let w = tiny_wisdom();
        let good = route(
            &w,
            &post(
                "/v1/lint",
                r#"{"content":"- name: ok\n  ansible.builtin.ping: {}\n"}"#,
            ),
        );
        assert_eq!(good.status, 200);
        let j = parse_json(&String::from_utf8(good.body).unwrap()).unwrap();
        assert_eq!(j.get("schema_correct").and_then(Json::as_bool), Some(true));

        let bad = route(
            &w,
            &post(
                "/v1/lint",
                r#"{"content":"- name: bad\n  not_a_module: {}\n"}"#,
            ),
        );
        let j = parse_json(&String::from_utf8(bad.body).unwrap()).unwrap();
        assert_eq!(j.get("schema_correct").and_then(Json::as_bool), Some(false));
        assert!(matches!(j.get("findings"), Some(Json::Arr(items)) if !items.is_empty()));
    }

    #[test]
    fn stats_endpoint_reports_idle_direct_path() {
        let w = tiny_wisdom();
        let r = route(
            &w,
            &Request {
                method: "GET".to_string(),
                path: "/v1/stats".to_string(),
                headers: HashMap::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(r.status, 200);
        let j = parse_json(&String::from_utf8(r.body).unwrap()).unwrap();
        assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.get("in_flight").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.get("max_batch_size").and_then(Json::as_f64), Some(1.0));
        let pc = j.get("prefix_cache").expect("prefix_cache object");
        assert_eq!(pc.get("enabled").and_then(Json::as_bool), Some(false));
        let spec = j.get("speculative").expect("speculative object");
        assert_eq!(spec.get("enabled").and_then(Json::as_bool), Some(false));
        assert_eq!(spec.get("k").and_then(Json::as_f64), Some(0.0));
        assert_eq!(spec.get("draft").and_then(Json::as_str), Some("off"));
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: HashMap::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn readyz_reflects_the_ready_flag() {
        let w = tiny_wisdom();
        // The direct path (no scheduler) is ready as soon as it's routable.
        assert_eq!(route(&w, &get("/readyz")).status, 200);
        let not_ready = route_full(&w, None, 2, None, false, &get("/readyz"));
        assert_eq!(not_ready.status, 503);
        assert!(not_ready
            .headers
            .iter()
            .any(|(k, v)| k == "retry-after" && v == "2"));
    }

    #[test]
    fn metrics_renders_exposition_with_telemetry_and_404s_without() {
        let w = tiny_wisdom();
        assert_eq!(route(&w, &get("/metrics")).status, 404);
        let telemetry = ServerTelemetry::with_logger(wisdom_telemetry::Logger::default());
        telemetry.observe_request("GET", "/healthz", 200, 0.001);
        let r = route_full(&w, None, 1, Some(&telemetry), true, &get("/metrics"));
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, METRICS_CONTENT_TYPE);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("# TYPE wisdom_request_duration_seconds histogram"));
        assert!(body.contains("# TYPE wisdom_ttft_seconds histogram"));
        assert!(body.contains("# TYPE wisdom_queue_wait_seconds histogram"));
        assert!(body.contains("# TYPE wisdom_batch_occupancy gauge"));
        assert!(body.contains("# TYPE wisdom_prefix_cache_hits_total counter"));
    }

    #[test]
    fn stats_from_registry_keeps_the_json_shape() {
        let w = tiny_wisdom();
        let telemetry = ServerTelemetry::with_logger(wisdom_telemetry::Logger::default());
        telemetry.batch.queue_depth.set(3.0);
        telemetry.batch.batch_occupancy.set(2.0);
        let r = route_full(&w, None, 1, Some(&telemetry), true, &get("/v1/stats"));
        assert_eq!(r.status, 200);
        let j = parse_json(&String::from_utf8(r.body).unwrap()).unwrap();
        assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("in_flight").and_then(Json::as_f64), Some(2.0));
        // Scheduler-less: the prefix cache reads disabled even though the
        // registry has the (idle) family registered.
        let pc = j.get("prefix_cache").expect("prefix_cache object");
        assert_eq!(pc.get("enabled").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn bad_requests_are_rejected() {
        let w = tiny_wisdom();
        assert_eq!(route(&w, &post("/v1/completions", "not json")).status, 400);
        assert_eq!(route(&w, &post("/v1/completions", "{}")).status, 400);
        assert_eq!(route(&w, &post("/nope", "{}")).status, 404);
    }
}
