//! `wisdom-curation` — the streaming corpus-curation pipeline.
//!
//! The paper's headline result rests on data curation: Galaxy, GitHub and
//! GitLab YAML is collected, deduplicated, lint-filtered and standardized
//! before any training happens (Table 1). This crate turns that batch
//! description into a backpressured streaming system the repo can point at
//! millions of documents:
//!
//! ```text
//! ingest ──▶ [bounded queue] ──▶ parse + lint + score + MinHash  (N workers)
//!                                        │
//!                                 [bounded queue]
//!                                        ▼
//!                        curator (sequence-order restored):
//!                exact dedup (content-confirmed) ▶ MinHash-LSH
//!                near-dedup ▶ quality floor ▶ deterministic shards
//! ```
//!
//! * **Streaming & backpressured** — stages talk over bounded
//!   `crossbeam::channel`s; a slow curator throttles ingest instead of
//!   buffering the corpus in memory.
//! * **Deterministic at any worker count** — workers compute only pure
//!   per-document facts; every order-sensitive decision happens on one
//!   curator thread behind a sequence-number reorder buffer, so shard
//!   bytes and the stats manifest are byte-identical for 1, 2 or 16
//!   workers (pinned by `tests/pipeline_determinism.rs`).
//! * **Content-confirmed exact dedup** — a hash selects a bucket, bytes
//!   decide membership ([`ExactDedup`]); no 64-bit collision can silently
//!   drop a distinct document.
//! * **MinHash-LSH near-dedup** — token-shingle MinHash signatures
//!   ([`MinHasher`]) with banded LSH candidate lookup ([`NearDedup`]);
//!   estimator tolerances are pinned by proptests in
//!   `tests/minhash_props.rs`.
//! * **Quality scoring** — parse / strict-schema lint / module awareness
//!   folded into one `[0, 1]` score ([`score_document`]) the pipeline
//!   filters on and histograms into the manifest.
//! * **Instrumented** — optional [`CurationTelemetry`] records per-stage
//!   throughput counters, queue-depth gauges and latency histograms under
//!   the `wisdom_curation_*` metric families.
//!
//! # Examples
//!
//! ```
//! use wisdom_curation::{curate, CurationConfig, DocKind, InputDoc};
//!
//! let docs = vec![
//!     InputDoc {
//!         source: "galaxy".into(),
//!         kind: DocKind::Ansible,
//!         text: "- name: Ping the host\n  ansible.builtin.ping: {}\n".into(),
//!     },
//!     InputDoc {
//!         source: "galaxy".into(),
//!         kind: DocKind::Ansible,
//!         text: "- name: Ping the host\n  ansible.builtin.ping: {}\n".into(),
//!     },
//! ];
//! let report = curate(docs, &CurationConfig::default());
//! assert_eq!(report.kept, 1);
//! assert_eq!(report.exact_dups, 1);
//! ```

mod dedup;
mod pipeline;
mod score;
mod shard;
mod shingle;

pub use dedup::{ExactDedup, NearDedup, NearVerdict};
pub use pipeline::{
    corpus_docs, curate, disk_docs, CurationConfig, CurationReport, CurationTelemetry, DropReason,
    InputDoc, SourceCounts,
};
pub use score::{score_document, DocKind, DocScore};
pub use shard::{unframe, write_shards, Shard, ShardWriter};
pub use shingle::{jaccard, shingle_set, tokenize, MinHasher, Signature};
