//! The streaming curation pipeline: ingest → parse/lint/score (parallel
//! workers) → exact dedup → MinHash near-dedup → deterministic sharding.
//!
//! Stages are connected by bounded MPMC channels (`crossbeam::channel`),
//! so a slow stage backpressures the ones before it instead of buffering
//! the whole corpus. The parallel stage computes only *pure* per-document
//! facts (parse/lint/score results and the MinHash signature); every
//! order-sensitive decision — exact dedup, near dedup, quality filtering,
//! sharding — happens on the single curator thread behind a sequence-number
//! reorder buffer. Workers therefore only change *when* a document's facts
//! arrive, never *what* is decided from them, and the kept sequence, shard
//! bytes and manifest are byte-identical for any worker count.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver};
use wisdom_corpus::Corpus;
use wisdom_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::dedup::{ExactDedup, NearDedup, NearVerdict};
use crate::score::{score_document, DocKind, DocScore};
use crate::shard::{Shard, ShardWriter};
use crate::shingle::{shingle_set, MinHasher, Signature};

/// One document entering the pipeline.
#[derive(Debug, Clone)]
pub struct InputDoc {
    /// Source channel label (`"galaxy"`, `"gitlab"`, `"disk:…"`, …).
    pub source: String,
    /// Which scoring rubric applies.
    pub kind: DocKind,
    /// The raw YAML text.
    pub text: String,
}

/// Pipeline configuration. `seed` drives every stochastic component (the
/// MinHash lane seeds) through `wisdom-prng`, so one seed pins the whole
/// curated output.
#[derive(Debug, Clone)]
pub struct CurationConfig {
    /// Parallel parse/lint/score workers.
    pub workers: usize,
    /// Capacity of each inter-stage channel (the backpressure window).
    pub queue_depth: usize,
    /// Documents per output shard.
    pub shard_docs: usize,
    /// Tokens per shingle.
    pub shingle_k: usize,
    /// LSH bands.
    pub bands: usize,
    /// MinHash lanes per band.
    pub rows: usize,
    /// True-Jaccard similarity the near-dedup stage must reliably remove;
    /// the rejection floor is set two estimator standard errors below it.
    pub target_similarity: f64,
    /// Minimum quality score a document must reach to be kept.
    pub min_quality: f64,
    /// Master seed for the MinHash family.
    pub seed: u64,
    /// Whether to keep the curated texts in the report (in addition to the
    /// framed shard bytes).
    pub keep_texts: bool,
    /// Optional pre-resolved telemetry handles.
    pub telemetry: Option<CurationTelemetry>,
}

impl Default for CurationConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_depth: 64,
            shard_docs: 256,
            shingle_k: 3,
            bands: 32,
            rows: 4,
            target_similarity: 0.8,
            min_quality: 0.35,
            seed: 0,
            keep_texts: true,
            telemetry: None,
        }
    }
}

/// Pre-resolved telemetry handles for every stage, following the repo's
/// handle-bundle pattern: resolving label sets once up front keeps the hot
/// path at one or two relaxed atomic ops per event.
#[derive(Clone)]
pub struct CurationTelemetry {
    ingested: Arc<Counter>,
    ingested_bytes: Arc<Counter>,
    processed: Arc<Counter>,
    kept: Arc<Counter>,
    kept_bytes: Arc<Counter>,
    dropped_parse: Arc<Counter>,
    dropped_quality: Arc<Counter>,
    dropped_exact: Arc<Counter>,
    dropped_near: Arc<Counter>,
    parse_queue: Arc<Gauge>,
    curate_queue: Arc<Gauge>,
    process_seconds: Arc<Histogram>,
    curate_seconds: Arc<Histogram>,
}

impl CurationTelemetry {
    /// Registers the `wisdom_curation_*` metric families on `registry` and
    /// resolves the handles the pipeline records through.
    pub fn new(registry: &Registry) -> Self {
        let docs = |stage: &str| {
            registry.counter_with(
                "wisdom_curation_docs_total",
                "Documents passing each curation stage.",
                &[("stage", stage)],
            )
        };
        let dropped = |reason: &str| {
            registry.counter_with(
                "wisdom_curation_dropped_total",
                "Documents dropped by the curation pipeline, by reason.",
                &[("reason", reason)],
            )
        };
        let bytes = |stage: &str| {
            registry.counter_with(
                "wisdom_curation_bytes_total",
                "Document bytes passing each curation stage.",
                &[("stage", stage)],
            )
        };
        let queue = |name: &str| {
            registry.gauge_with(
                "wisdom_curation_queue_depth",
                "Bounded-channel depth between curation stages.",
                &[("queue", name)],
            )
        };
        let seconds = |stage: &str| {
            registry.histogram_with(
                "wisdom_curation_stage_seconds",
                "Per-document stage latency.",
                &[("stage", stage)],
                &Histogram::latency_buckets(),
            )
        };
        Self {
            ingested: docs("ingest"),
            ingested_bytes: bytes("ingest"),
            processed: docs("processed"),
            kept: docs("kept"),
            kept_bytes: bytes("kept"),
            dropped_parse: dropped("parse"),
            dropped_quality: dropped("quality"),
            dropped_exact: dropped("exact_dup"),
            dropped_near: dropped("near_dup"),
            parse_queue: queue("parse"),
            curate_queue: queue("curate"),
            process_seconds: seconds("process"),
            curate_seconds: seconds("curate"),
        }
    }
}

impl std::fmt::Debug for CurationTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CurationTelemetry").finish_non_exhaustive()
    }
}

/// Why a document was dropped (manifest bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Did not parse as YAML.
    Parse,
    /// Parsed but scored below `min_quality`.
    Quality,
    /// Byte-identical to an earlier kept document.
    ExactDup,
    /// Estimated Jaccard against a kept document reached the floor.
    NearDup,
}

/// Per-source counters for the manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCounts {
    /// Documents ingested from this source.
    pub ingested: usize,
    /// Documents kept from this source.
    pub kept: usize,
}

/// Everything the pipeline produced: shards, counts, and the quality
/// histogram. Excludes wall-clock, so two runs over the same input with the
/// same config — at any worker count — compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct CurationReport {
    /// Documents ingested.
    pub ingested: usize,
    /// Bytes ingested.
    pub ingested_bytes: usize,
    /// Dropped: unparseable YAML.
    pub parse_failed: usize,
    /// Dropped: below the quality floor.
    pub quality_rejected: usize,
    /// Dropped: exact duplicates (content-confirmed).
    pub exact_dups: usize,
    /// Dropped: MinHash near-duplicates.
    pub near_dups: usize,
    /// Documents kept.
    pub kept: usize,
    /// Bytes kept (raw text, without shard framing).
    pub kept_bytes: usize,
    /// Ten-bin histogram of kept-document quality scores over `[0, 1]`.
    pub quality_hist: [usize; 10],
    /// Per-source ingested/kept counts, in first-seen order.
    pub per_source: Vec<(String, SourceCounts)>,
    /// The sealed shards.
    pub shards: Vec<Shard>,
    /// Kept `(source, text)` pairs when `keep_texts` was set.
    pub kept_docs: Vec<(String, String)>,
    /// For each near-duplicate drop: `(dropped_ingest_index, kept_index,
    /// estimated_jaccard)` — the evidence trail recall tests audit.
    pub near_dup_pairs: Vec<(usize, usize, f64)>,
}

impl CurationReport {
    /// Fraction of ingested documents dropped as exact duplicates.
    pub fn exact_dup_rate(&self) -> f64 {
        self.exact_dups as f64 / (self.ingested.max(1)) as f64
    }

    /// Fraction of ingested documents dropped as near duplicates.
    pub fn near_dup_rate(&self) -> f64 {
        self.near_dups as f64 / (self.ingested.max(1)) as f64
    }

    /// Renders the deterministic stats manifest (JSON). Everything in it is
    /// a pure function of input + config, so it is committed alongside the
    /// shards and compared across worker counts in tests.
    pub fn manifest_json(&self) -> String {
        let mut sources = String::new();
        for (i, (name, c)) in self.per_source.iter().enumerate() {
            if i > 0 {
                sources.push_str(",\n");
            }
            sources.push_str(&format!(
                "    {{\"source\": \"{}\", \"ingested\": {}, \"kept\": {}}}",
                name, c.ingested, c.kept
            ));
        }
        let mut shards = String::new();
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                shards.push_str(",\n");
            }
            shards.push_str(&format!(
                "    {{\"name\": \"{}\", \"docs\": {}, \"bytes\": {}, \"checksum\": \"{:016x}\"}}",
                s.name,
                s.docs,
                s.bytes.len(),
                s.checksum
            ));
        }
        let hist: Vec<String> = self.quality_hist.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\n  \"ingested\": {},\n  \"ingested_bytes\": {},\n  \"kept\": {},\n  \
             \"kept_bytes\": {},\n  \"dropped\": {{\"parse\": {}, \"quality\": {}, \
             \"exact_dup\": {}, \"near_dup\": {}}},\n  \
             \"quality_hist\": [{}],\n  \"sources\": [\n{}\n  ],\n  \"shards\": [\n{}\n  ]\n}}\n",
            self.ingested,
            self.ingested_bytes,
            self.kept,
            self.kept_bytes,
            self.parse_failed,
            self.quality_rejected,
            self.exact_dups,
            self.near_dups,
            hist.join(", "),
            sources,
            shards
        )
    }
}

struct RawDoc {
    seq: usize,
    doc: InputDoc,
}

struct ProcDoc {
    seq: usize,
    doc: InputDoc,
    score: DocScore,
    signature: Signature,
}

/// Runs the full pipeline over `docs` and returns the report.
///
/// # Panics
///
/// Panics if `config.workers == 0`.
pub fn curate(docs: Vec<InputDoc>, config: &CurationConfig) -> CurationReport {
    assert!(config.workers > 0, "at least one worker required");
    let hasher = MinHasher::new(config.seed, config.bands, config.rows);
    let telemetry = config.telemetry.clone();

    let (raw_tx, raw_rx) = bounded::<RawDoc>(config.queue_depth);
    let (proc_tx, proc_rx) = bounded::<ProcDoc>(config.queue_depth);

    crossbeam::scope(|scope| {
        // Ingest: assign sequence numbers and feed the bounded queue.
        {
            let raw_tx = raw_tx.clone();
            let telemetry = telemetry.clone();
            scope.spawn(move |_| {
                for (seq, doc) in docs.into_iter().enumerate() {
                    if let Some(t) = &telemetry {
                        t.ingested.inc();
                        t.ingested_bytes.add(doc.text.len() as u64);
                        t.parse_queue.set(raw_tx.len() as f64);
                    }
                    if raw_tx.send(RawDoc { seq, doc }).is_err() {
                        break;
                    }
                }
            });
        }
        drop(raw_tx);

        // Parallel parse/lint/score/sketch workers: pure per-document work.
        for _ in 0..config.workers {
            let raw_rx = raw_rx.clone();
            let proc_tx = proc_tx.clone();
            let hasher = hasher.clone();
            let telemetry = telemetry.clone();
            let shingle_k = config.shingle_k;
            scope.spawn(move |_| {
                while let Ok(RawDoc { seq, doc }) = raw_rx.recv() {
                    let started = Instant::now();
                    let score = score_document(&doc.text, doc.kind);
                    let signature = hasher.signature(&shingle_set(&doc.text, shingle_k));
                    if let Some(t) = &telemetry {
                        t.processed.inc();
                        t.process_seconds.observe(started.elapsed().as_secs_f64());
                        t.curate_queue.set(proc_tx.len() as f64);
                    }
                    if proc_tx
                        .send(ProcDoc {
                            seq,
                            doc,
                            score,
                            signature,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(raw_rx);
        drop(proc_tx);

        // Curator: restore ingest order, then decide keeps/drops serially so
        // the output is independent of worker scheduling.
        curator(proc_rx, config, &hasher, telemetry.as_ref())
    })
    .expect("curation scope")
}

fn curator(
    proc_rx: Receiver<ProcDoc>,
    config: &CurationConfig,
    hasher: &MinHasher,
    telemetry: Option<&CurationTelemetry>,
) -> CurationReport {
    let floor = NearDedup::floor_for_target(config.target_similarity, hasher.lanes());
    let mut exact = ExactDedup::new();
    let mut near = NearDedup::new(hasher.clone(), floor);
    let mut writer = ShardWriter::new(config.shard_docs);
    // Maps `NearDedup` kept-indices back to ingest sequence numbers.
    let mut kept_seq: Vec<usize> = Vec::new();

    let mut report = CurationReport {
        ingested: 0,
        ingested_bytes: 0,
        parse_failed: 0,
        quality_rejected: 0,
        exact_dups: 0,
        near_dups: 0,
        kept: 0,
        kept_bytes: 0,
        quality_hist: [0; 10],
        per_source: Vec::new(),
        shards: Vec::new(),
        kept_docs: Vec::new(),
        near_dup_pairs: Vec::new(),
    };

    let mut pending: HashMap<usize, ProcDoc> = HashMap::new();
    let mut next_seq = 0usize;
    while let Ok(proc_doc) = proc_rx.recv() {
        pending.insert(proc_doc.seq, proc_doc);
        while let Some(p) = pending.remove(&next_seq) {
            next_seq += 1;
            let started = Instant::now();
            admit(
                p,
                config,
                &mut exact,
                &mut near,
                &mut kept_seq,
                &mut writer,
                &mut report,
                telemetry,
            );
            if let Some(t) = telemetry {
                t.curate_seconds.observe(started.elapsed().as_secs_f64());
            }
        }
    }
    debug_assert!(pending.is_empty(), "curator drained out of order");

    report.shards = writer.finish();
    report
}

#[allow(clippy::too_many_arguments)]
fn admit(
    p: ProcDoc,
    config: &CurationConfig,
    exact: &mut ExactDedup,
    near: &mut NearDedup,
    kept_seq: &mut Vec<usize>,
    writer: &mut ShardWriter,
    report: &mut CurationReport,
    telemetry: Option<&CurationTelemetry>,
) {
    report.ingested += 1;
    report.ingested_bytes += p.doc.text.len();
    let source_idx = match report
        .per_source
        .iter()
        .position(|(name, _)| *name == p.doc.source)
    {
        Some(i) => i,
        None => {
            report
                .per_source
                .push((p.doc.source.clone(), SourceCounts::default()));
            report.per_source.len() - 1
        }
    };
    report.per_source[source_idx].1.ingested += 1;

    let drop_reason = if !p.score.parsed {
        Some(DropReason::Parse)
    } else if p.score.quality < config.min_quality {
        Some(DropReason::Quality)
    } else if !exact.insert(&p.doc.text) {
        Some(DropReason::ExactDup)
    } else {
        match near.offer(&p.signature) {
            NearVerdict::Kept(idx) => {
                debug_assert_eq!(idx, kept_seq.len());
                kept_seq.push(p.seq);
                None
            }
            NearVerdict::Duplicate { of, estimate } => {
                report.near_dup_pairs.push((p.seq, kept_seq[of], estimate));
                Some(DropReason::NearDup)
            }
        }
    };

    match drop_reason {
        Some(DropReason::Parse) => {
            report.parse_failed += 1;
            if let Some(t) = telemetry {
                t.dropped_parse.inc();
            }
        }
        Some(DropReason::Quality) => {
            report.quality_rejected += 1;
            if let Some(t) = telemetry {
                t.dropped_quality.inc();
            }
        }
        Some(DropReason::ExactDup) => {
            report.exact_dups += 1;
            if let Some(t) = telemetry {
                t.dropped_exact.inc();
            }
        }
        Some(DropReason::NearDup) => {
            report.near_dups += 1;
            if let Some(t) = telemetry {
                t.dropped_near.inc();
            }
        }
        None => {
            let text_len = p.doc.text.len() as u64;
            report.kept += 1;
            report.kept_bytes += p.doc.text.len();
            report.per_source[source_idx].1.kept += 1;
            let bin = ((p.score.quality * 10.0) as usize).min(9);
            report.quality_hist[bin] += 1;
            writer.add(&p.doc.source, &p.doc.text);
            if config.keep_texts {
                report.kept_docs.push((p.doc.source.clone(), p.doc.text));
            }
            if let Some(t) = telemetry {
                t.kept.inc();
                t.kept_bytes.add(text_len);
            }
        }
    }
}

/// Flattens a built corpus' YAML channels into pipeline input, in the
/// deterministic channel order the corpus assembler produced them.
pub fn corpus_docs(corpus: &Corpus) -> Vec<InputDoc> {
    let mut docs = Vec::new();
    let channels: [(&str, DocKind, &[String]); 4] = [
        ("galaxy", DocKind::Ansible, &corpus.galaxy),
        ("gitlab", DocKind::Ansible, &corpus.gitlab),
        ("github", DocKind::Ansible, &corpus.github_ansible),
        ("generic", DocKind::Generic, &corpus.generic),
    ];
    for (source, kind, texts) in channels {
        for text in texts {
            docs.push(InputDoc {
                source: source.to_string(),
                kind,
                text: text.clone(),
            });
        }
    }
    docs
}

/// Recursively collects `*.yml` / `*.yaml` files under `root` (sorted walk,
/// so ingest order is stable across platforms) as [`DocKind::Auto`] input.
pub fn disk_docs(root: &std::path::Path) -> std::io::Result<Vec<InputDoc>> {
    let mut docs = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if matches!(
                path.extension().and_then(|e| e.to_str()),
                Some("yml") | Some("yaml")
            ) {
                docs.push(InputDoc {
                    source: format!("disk:{}", path.display()),
                    kind: DocKind::Auto,
                    text: std::fs::read_to_string(&path)?,
                });
            }
        }
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(source: &str, kind: DocKind, text: &str) -> InputDoc {
        InputDoc {
            source: source.to_string(),
            kind,
            text: text.to_string(),
        }
    }

    fn small_input() -> Vec<InputDoc> {
        vec![
            doc(
                "galaxy",
                DocKind::Ansible,
                "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
            ),
            doc("galaxy", DocKind::Ansible, "broken: [yaml\n"),
            doc(
                "galaxy",
                DocKind::Ansible,
                "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n",
            ),
            doc("generic", DocKind::Generic, "stages:\n  - build\n  - test\n"),
        ]
    }

    #[test]
    fn filters_dedups_and_keeps() {
        let report = curate(small_input(), &CurationConfig::default());
        assert_eq!(report.ingested, 4);
        assert_eq!(report.parse_failed, 1);
        assert_eq!(report.exact_dups, 1);
        assert_eq!(report.kept, 2);
        assert_eq!(report.kept_docs.len(), 2);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].docs, 2);
    }

    #[test]
    fn near_duplicates_are_dropped_with_provenance() {
        let base = "- name: Install nginx on the web tier\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n    update_cache: true\n- name: Start the nginx service\n  ansible.builtin.service:\n    name: nginx\n    state: started\n    enabled: true\n";
        let near = base.replace("state: started", "state: restarted");
        let input = vec![
            doc("galaxy", DocKind::Ansible, base),
            doc("galaxy", DocKind::Ansible, &near),
        ];
        let report = curate(input, &CurationConfig::default());
        assert_eq!(report.kept, 1);
        assert_eq!(report.near_dups, 1);
        assert_eq!(report.near_dup_pairs.len(), 1);
        let (dropped, kept_of, est) = report.near_dup_pairs[0];
        assert_eq!((dropped, kept_of), (1, 0));
        assert!(est > 0.7, "estimate {est}");
    }

    #[test]
    fn quality_floor_rejects_bad_ansible() {
        let input = vec![doc(
            "galaxy",
            DocKind::Ansible,
            "- name: Ping\n  ansible.builtin.ping: {}\n  totally_bogus: 1\n  also_bogus: 2\n  more_bogus: 3\n",
        )];
        let config = CurationConfig {
            min_quality: 0.6,
            ..CurationConfig::default()
        };
        let report = curate(input, &config);
        assert_eq!(report.quality_rejected, 1);
        assert_eq!(report.kept, 0);
    }

    #[test]
    fn manifest_is_deterministic_json() {
        let a = curate(small_input(), &CurationConfig::default());
        let b = curate(small_input(), &CurationConfig::default());
        assert_eq!(a.manifest_json(), b.manifest_json());
        assert!(a.manifest_json().contains("\"ingested\": 4"));
    }

    #[test]
    fn telemetry_counters_track_report() {
        let registry = Registry::new();
        let config = CurationConfig {
            workers: 2,
            telemetry: Some(CurationTelemetry::new(&registry)),
            ..CurationConfig::default()
        };
        let report = curate(small_input(), &config);
        let text = registry.render();
        let sample = |series: &str| wisdom_telemetry::sample_value(&text, series).unwrap_or(0.0);
        assert_eq!(
            sample("wisdom_curation_docs_total{stage=\"ingest\"}") as usize,
            report.ingested
        );
        assert_eq!(
            sample("wisdom_curation_docs_total{stage=\"kept\"}") as usize,
            report.kept
        );
        assert_eq!(
            sample("wisdom_curation_dropped_total{reason=\"parse\"}") as usize,
            report.parse_failed
        );
        assert_eq!(
            sample("wisdom_curation_dropped_total{reason=\"exact_dup\"}") as usize,
            report.exact_dups
        );
    }

    #[test]
    fn disk_docs_walks_sorted() {
        let dir = std::env::temp_dir().join(format!("wisdom-curation-disk-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("sub")).expect("mkdir");
        std::fs::write(dir.join("b.yml"), "b: 1\n").expect("write");
        std::fs::write(dir.join("a.yaml"), "a: 1\n").expect("write");
        std::fs::write(dir.join("sub/c.yml"), "c: 1\n").expect("write");
        std::fs::write(dir.join("ignored.txt"), "nope").expect("write");
        let docs = disk_docs(&dir).expect("walk");
        let names: Vec<&str> = docs
            .iter()
            .map(|d| d.source.rsplit('/').next().unwrap())
            .collect();
        assert_eq!(names, vec!["a.yaml", "b.yml", "c.yml"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
