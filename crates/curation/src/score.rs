//! Per-document quality scoring: parse, lint, schema and module awareness.
//!
//! The paper's curation keeps only YAML that parses, and lint-filters and
//! standardizes the Ansible fine-tuning channel. This module turns those
//! checks into one `[0, 1]` score per document so the pipeline can filter
//! on a single threshold and report a corpus-wide quality histogram:
//!
//! * every document must parse with `wisdom-yaml` (score 0 otherwise);
//! * Ansible documents are linted against the strict Schema Correct rules
//!   (the same module parameter schemas `wisdom-grammar` compiles into its
//!   decoding automaton — both read `wisdom_ansible::MODULES`), and scored
//!   on how many of their tasks resolve to a known module after FQCN
//!   normalization (the Ansible Aware machinery);
//! * generic YAML only has to parse; a small structure component spreads
//!   the histogram so trivial one-key files rank below real manifests.

use wisdom_ansible::{detect_target, lint_value, normalize_document, LintTarget, ModuleRegistry};
use wisdom_yaml::Value;

/// What a document claims to be, which decides the scoring rubric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// Ansible playbook or task file: linted against the module schemas.
    Ansible,
    /// Generic YAML (CI configs, k8s manifests…): must parse, nothing more.
    Generic,
    /// Unknown provenance (e.g. an on-disk tree): sniffed per document —
    /// treated as Ansible when it looks like a playbook or any task
    /// resolves to a known module.
    Auto,
}

/// The scored quality facets of one document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocScore {
    /// Whether `wisdom-yaml` parses the document.
    pub parsed: bool,
    /// Lint violations against the strict schema (Ansible rubric only).
    pub violations: usize,
    /// The per-sample Schema Correct predicate (no violations).
    pub schema_correct: bool,
    /// Fraction of task-shaped mappings resolving to a registry module.
    pub module_aware: f64,
    /// The combined `[0, 1]` quality score the pipeline filters on.
    pub quality: f64,
}

/// Counts `(task_like, module_hits)` over the document's task positions: a
/// sequence-item mapping that is not a play header and carries a `name` key
/// or resolves a module key is task-like; a module hit resolves one of its
/// keys in the registry (FQCN normalization included — `apt` and
/// `ansible.builtin.apt` both hit). Module-argument mappings are not
/// descended into, so an `apt: {name: nginx}` args block never
/// masquerades as an unresolved task.
fn module_stats(value: &Value, reg: &ModuleRegistry, task_like: &mut usize, hits: &mut usize) {
    if let Some(items) = value.as_seq() {
        for item in items {
            let Some(map) = item.as_map() else { continue };
            let is_play = map.contains_key("hosts") || map.contains_key("import_playbook");
            let resolves = map.keys().any(|k| reg.is_module(k));
            if !is_play && (resolves || map.contains_key("name")) {
                *task_like += 1;
                if resolves {
                    *hits += 1;
                }
            }
            // Recurse through non-module values to reach nested task lists
            // (`tasks:`, `block:`, `rescue:`…) without entering module args.
            for (k, v) in map.iter() {
                if !reg.is_module(k) {
                    module_stats(v, reg, task_like, hits);
                }
            }
        }
    } else if let Some(map) = value.as_map() {
        for v in map.values() {
            module_stats(v, reg, task_like, hits);
        }
    }
}

/// Counts mapping entries recursively (the structure signal for generic
/// YAML: a real manifest has dozens, a stub has one or two).
fn mapping_entries(value: &Value) -> usize {
    match value {
        Value::Seq(items) => items.iter().map(mapping_entries).sum(),
        Value::Map(map) => map.len() + map.values().map(mapping_entries).sum::<usize>(),
        _ => 0,
    }
}

/// Scores one document under the given rubric.
///
/// # Examples
///
/// ```
/// use wisdom_curation::{score_document, DocKind};
///
/// let good = "- name: Ping the host\n  ansible.builtin.ping: {}\n";
/// let s = score_document(good, DocKind::Ansible);
/// assert!(s.parsed && s.schema_correct && s.quality > 0.9);
///
/// let broken = "key: [unclosed\n";
/// assert_eq!(score_document(broken, DocKind::Generic).quality, 0.0);
/// ```
pub fn score_document(text: &str, kind: DocKind) -> DocScore {
    let Ok(value) = wisdom_yaml::parse(text) else {
        return DocScore {
            parsed: false,
            violations: 0,
            schema_correct: false,
            module_aware: 0.0,
            quality: 0.0,
        };
    };
    let reg = ModuleRegistry::global();
    let normalized = normalize_document(&value);
    let (mut task_like, mut hits) = (0usize, 0usize);
    module_stats(&normalized, reg, &mut task_like, &mut hits);
    let module_aware = if task_like == 0 {
        0.0
    } else {
        hits as f64 / task_like as f64
    };

    let ansible = match kind {
        DocKind::Ansible => true,
        DocKind::Generic => false,
        DocKind::Auto => hits > 0 || detect_target(&value) == LintTarget::Playbook,
    };

    if ansible {
        let violations = lint_value(&value, LintTarget::Auto).len();
        let schema_correct = violations == 0;
        let lint_component = 1.0 / (1.0 + violations as f64);
        // Parse (0.25) + lint proximity (0.35) + strict Schema Correct
        // (0.25) + module awareness (0.15).
        let quality = 0.25
            + 0.35 * lint_component
            + if schema_correct { 0.25 } else { 0.0 }
            + 0.15 * module_aware;
        DocScore {
            parsed: true,
            violations,
            schema_correct,
            module_aware,
            quality,
        }
    } else {
        // Generic rubric: parsing is most of the score; structure richness
        // (mapping entries) spreads the rest.
        let entries = mapping_entries(&value) as f64;
        let quality = 0.5 + 0.5 * (entries / (entries + 8.0));
        DocScore {
            parsed: true,
            violations: 0,
            schema_correct: false,
            module_aware,
            quality,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_correct_ansible_scores_high() {
        let doc =
            "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
        let s = score_document(doc, DocKind::Ansible);
        assert!(s.parsed);
        assert!(s.schema_correct);
        assert_eq!(s.violations, 0);
        assert!(s.module_aware > 0.99);
        assert!(s.quality > 0.95, "quality {}", s.quality);
    }

    #[test]
    fn violating_ansible_scores_lower_than_clean() {
        let clean = "- name: Ping\n  ansible.builtin.ping: {}\n";
        let dirty = "- name: Ping\n  ansible.builtin.ping: {}\n  bogus_keyword: 1\n";
        let sc = score_document(clean, DocKind::Ansible);
        let sd = score_document(dirty, DocKind::Ansible);
        assert!(sd.violations > 0);
        assert!(!sd.schema_correct);
        assert!(sd.quality < sc.quality);
    }

    #[test]
    fn unparseable_scores_zero() {
        let s = score_document(": : :\n  - [\n", DocKind::Ansible);
        assert!(!s.parsed);
        assert_eq!(s.quality, 0.0);
    }

    #[test]
    fn generic_yaml_only_needs_to_parse() {
        let k8s = "apiVersion: v1\nkind: Service\nmetadata:\n  name: web\nspec:\n  ports:\n    - port: 80\n";
        let s = score_document(k8s, DocKind::Generic);
        assert!(s.parsed);
        assert_eq!(s.violations, 0);
        assert!(s.quality > 0.5);
    }

    #[test]
    fn richer_generic_docs_outscore_stubs() {
        let stub = "key: value\n";
        let rich = "a: 1\nb: 2\nc:\n  d: 3\n  e: 4\n  f:\n    g: 5\n    h: 6\n";
        assert!(
            score_document(rich, DocKind::Generic).quality
                > score_document(stub, DocKind::Generic).quality
        );
    }

    #[test]
    fn auto_kind_sniffs_ansible() {
        let task_file = "- name: Ping\n  ansible.builtin.ping: {}\n  bogus_keyword: 1\n";
        let s = score_document(task_file, DocKind::Auto);
        // Sniffed as Ansible: violations are counted.
        assert!(s.violations > 0);
        let generic = "stages:\n  - build\n  - test\n";
        let g = score_document(generic, DocKind::Auto);
        assert_eq!(g.violations, 0);
    }
}
