//! Token shingling and MinHash signatures for near-duplicate detection.
//!
//! A document is reduced to its set of `k`-token shingles (hashed to
//! `u64`), and the shingle set is sketched by a MinHash signature: for each
//! of `H` seeded hash functions, the minimum hash value over the set. The
//! fraction of agreeing signature lanes is an unbiased estimator of the
//! Jaccard similarity between the shingle sets (standard error
//! `sqrt(j(1-j)/H)`), which is what lets the pipeline compare millions of
//! document pairs without touching the texts.

use wisdom_prng::Prng;

/// Splits text into the word tokens shingling operates on: maximal runs of
/// alphanumeric / `_` / `-` / `.` bytes, lowercased. YAML punctuation
/// (colons, dashes-as-bullets, braces) is treated as separators so that
/// formatting-only differences (flow vs block style, indentation) do not
/// perturb the shingle set.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '_' || ch == '.' {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The set of hashed `k`-token shingles of `text`, sorted and deduplicated.
///
/// Documents shorter than `k` tokens contribute one shingle over whatever
/// tokens they have, so even tiny files get a non-empty set.
pub fn shingle_set(text: &str, k: usize) -> Vec<u64> {
    assert!(k > 0, "shingle width must be positive");
    let tokens = tokenize(text);
    let mut set: Vec<u64> = if tokens.len() <= k {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for t in &tokens {
            h = fnv1a(t.as_bytes(), h);
            h = fnv1a(&[0xff], h);
        }
        vec![h]
    } else {
        tokens
            .windows(k)
            .map(|w| {
                let mut h = 0xcbf2_9ce4_8422_2325;
                for t in w {
                    h = fnv1a(t.as_bytes(), h);
                    h = fnv1a(&[0xff], h);
                }
                h
            })
            .collect()
    };
    set.sort_unstable();
    set.dedup();
    set
}

/// Exact Jaccard similarity of two sorted shingle sets.
pub fn jaccard(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// A seeded family of `H = bands * rows` MinHash functions plus the LSH
/// banding geometry. All signatures compared against each other must come
/// from the same `MinHasher` (same seed, same geometry).
#[derive(Debug, Clone)]
pub struct MinHasher {
    /// Per-lane 64-bit mixing seeds, derived from the pipeline seed via
    /// `wisdom-prng` so the whole sketch is reproducible.
    lane_seeds: Vec<u64>,
    bands: usize,
    rows: usize,
}

/// A MinHash signature: one minimum per hash lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finalizer: a cheap, well-distributed 64-bit permutation.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl MinHasher {
    /// Creates a hasher with `bands * rows` lanes, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `bands == 0` or `rows == 0`.
    pub fn new(seed: u64, bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        let mut rng = Prng::seed_from_u64(seed ^ 0x6d69_6e68_6173_6821);
        let lane_seeds = (0..bands * rows).map(|_| rng.u64()).collect();
        Self {
            lane_seeds,
            bands,
            rows,
        }
    }

    /// Number of signature lanes.
    pub fn lanes(&self) -> usize {
        self.lane_seeds.len()
    }

    /// LSH bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows (lanes) per band.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Computes the signature of a sorted shingle set.
    ///
    /// An empty set signs as all-`u64::MAX`, agreeing fully with other
    /// empty sets and (almost surely) with nothing else.
    pub fn signature(&self, shingles: &[u64]) -> Signature {
        let mut sig = vec![u64::MAX; self.lane_seeds.len()];
        for &s in shingles {
            for (lane, &seed) in self.lane_seeds.iter().enumerate() {
                let h = mix64(s ^ seed);
                if h < sig[lane] {
                    sig[lane] = h;
                }
            }
        }
        Signature(sig)
    }

    /// Estimates Jaccard similarity as the fraction of agreeing lanes.
    pub fn estimate(&self, a: &Signature, b: &Signature) -> f64 {
        debug_assert_eq!(a.0.len(), b.0.len());
        let agree = a.0.iter().zip(&b.0).filter(|(x, y)| x == y).count();
        agree as f64 / a.0.len() as f64
    }

    /// The per-band bucket keys of a signature: one FNV hash over each
    /// band's `rows` lanes. Two documents are LSH candidates iff they share
    /// at least one band key.
    pub fn band_keys(&self, sig: &Signature) -> Vec<u64> {
        sig.0
            .chunks(self.rows)
            .map(|band| {
                let mut h = 0xcbf2_9ce4_8422_2325;
                for lane in band {
                    h = fnv1a(&lane.to_le_bytes(), h);
                }
                h
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_ignores_yaml_punctuation() {
        let a = tokenize("- name: Install nginx\n  apt: {name: nginx}\n");
        let b = tokenize("-   name:   install NGINX\n  apt:\n    name: nginx\n");
        assert_eq!(a, b);
        assert_eq!(a, vec!["name", "install", "nginx", "apt", "name", "nginx"]);
    }

    #[test]
    fn identical_docs_have_jaccard_one() {
        let s = shingle_set(
            "- name: Start service\n  service: name=web state=started\n",
            3,
        );
        assert_eq!(jaccard(&s, &s), 1.0);
    }

    #[test]
    fn disjoint_docs_have_jaccard_zero() {
        let a = shingle_set("alpha beta gamma delta epsilon", 3);
        let b = shingle_set("one two three four five", 3);
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn short_docs_still_shingle() {
        let s = shingle_set("ping", 3);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn signature_is_deterministic_and_seed_sensitive() {
        let set = shingle_set("install configure start enable verify restart", 2);
        let h1 = MinHasher::new(7, 8, 4);
        let h2 = MinHasher::new(7, 8, 4);
        let h3 = MinHasher::new(8, 8, 4);
        assert_eq!(h1.signature(&set), h2.signature(&set));
        assert_ne!(h1.signature(&set), h3.signature(&set));
    }

    #[test]
    fn estimate_tracks_true_jaccard_for_identical_and_disjoint() {
        let h = MinHasher::new(3, 16, 4);
        let a = shingle_set("alpha beta gamma delta epsilon zeta eta theta", 2);
        let b = shingle_set("uno dos tres cuatro cinco seis siete ocho", 2);
        assert_eq!(h.estimate(&h.signature(&a), &h.signature(&a)), 1.0);
        assert!(h.estimate(&h.signature(&a), &h.signature(&b)) < 0.1);
    }

    #[test]
    fn band_keys_have_band_count() {
        let h = MinHasher::new(1, 8, 4);
        let sig = h.signature(&shingle_set("a b c d e f", 2));
        assert_eq!(h.band_keys(&sig).len(), 8);
    }
}
