//! Exact and near-duplicate detection.
//!
//! [`ExactDedup`] is content-confirmed: a 64-bit hash only selects a
//! bucket, and membership is decided by comparing the actual bytes, so a
//! hash collision between distinct documents can never silently drop one
//! (the bug class the corpus assembler's original `HashSet<u64>` had).
//!
//! [`NearDedup`] is a MinHash-LSH index: a new document is bucketed by its
//! signature's band keys, candidates from colliding buckets are confirmed
//! by the signature-estimated Jaccard, and confirmed near-duplicates are
//! rejected. Decisions depend only on the order documents are offered, so
//! running the index behind the pipeline's order-restoring curator makes
//! the kept set independent of worker count.

use std::collections::HashMap;

use crate::shingle::{MinHasher, Signature};

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Content-confirmed exact-duplicate filter.
///
/// # Examples
///
/// ```
/// use wisdom_curation::ExactDedup;
///
/// let mut dedup = ExactDedup::new();
/// assert!(dedup.insert("- name: Ping\n"));
/// assert!(!dedup.insert("- name: Ping\n"));
/// assert!(dedup.insert("- name: Pong\n"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct ExactDedup {
    /// hash -> texts seen with that hash (singleton except under collision).
    buckets: HashMap<u64, Vec<String>>,
    len: usize,
}

impl ExactDedup {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` and records `text` if it has not been seen before;
    /// returns `false` for an exact duplicate. A hash hit alone is never
    /// enough to reject: the candidate bucket's contents are compared
    /// byte-for-byte first.
    pub fn insert(&mut self, text: &str) -> bool {
        let bucket = self.buckets.entry(fnv1a(text)).or_default();
        if bucket.iter().any(|seen| seen == text) {
            return false;
        }
        bucket.push(text.to_string());
        self.len += 1;
        true
    }

    /// Distinct documents recorded so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no document has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Outcome of offering a document to [`NearDedup`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NearVerdict {
    /// Kept: no prior document's estimated Jaccard reached the floor.
    /// Carries the index the document was assigned in the kept sequence.
    Kept(usize),
    /// Rejected as a near-duplicate of kept document `of` with estimated
    /// Jaccard `estimate`.
    Duplicate {
        /// Index (in the kept sequence) of the retained representative.
        of: usize,
        /// Signature-estimated Jaccard similarity against it.
        estimate: f64,
    },
}

/// MinHash-LSH near-duplicate index over kept documents.
pub struct NearDedup {
    hasher: MinHasher,
    /// Estimated-Jaccard floor at which a candidate is dropped.
    floor: f64,
    /// band key -> kept-doc indices in that bucket.
    buckets: HashMap<(u32, u64), Vec<usize>>,
    /// Signatures of kept documents.
    kept: Vec<Signature>,
}

impl NearDedup {
    /// Creates an index around `hasher`, dropping documents whose estimated
    /// Jaccard against a kept document reaches `floor`.
    ///
    /// The floor should sit a couple of standard errors *below* the
    /// similarity you want reliably removed: with `H` lanes the estimator's
    /// standard error at similarity `t` is `sqrt(t(1-t)/H)`, so
    /// [`floor_for_target`](Self::floor_for_target) computes `t - 2·se`.
    pub fn new(hasher: MinHasher, floor: f64) -> Self {
        Self {
            hasher,
            floor,
            buckets: HashMap::new(),
            kept: Vec::new(),
        }
    }

    /// The rejection floor that reliably removes pairs of true similarity
    /// `target`: two standard errors of estimator slack below `target`.
    pub fn floor_for_target(target: f64, lanes: usize) -> f64 {
        let se = (target * (1.0 - target) / lanes as f64).sqrt();
        (target - 2.0 * se).max(0.0)
    }

    /// The estimator floor documents are rejected at.
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// Number of kept documents indexed so far.
    pub fn len(&self) -> usize {
        self.kept.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.kept.is_empty()
    }

    /// Offers a document's signature; either indexes it as kept or rejects
    /// it as a near-duplicate of the most similar kept candidate.
    pub fn offer(&mut self, sig: &Signature) -> NearVerdict {
        let keys = self.hasher.band_keys(sig);
        let mut best: Option<(usize, f64)> = None;
        let mut checked: Vec<usize> = Vec::new();
        for (band, &key) in keys.iter().enumerate() {
            if let Some(bucket) = self.buckets.get(&(band as u32, key)) {
                for &idx in bucket {
                    if checked.contains(&idx) {
                        continue;
                    }
                    checked.push(idx);
                    let est = self.hasher.estimate(sig, &self.kept[idx]);
                    if est >= self.floor && best.map(|(_, b)| est > b).unwrap_or(true) {
                        best = Some((idx, est));
                    }
                }
            }
        }
        if let Some((of, estimate)) = best {
            return NearVerdict::Duplicate { of, estimate };
        }
        let idx = self.kept.len();
        for (band, key) in keys.into_iter().enumerate() {
            self.buckets
                .entry((band as u32, key))
                .or_default()
                .push(idx);
        }
        self.kept.push(sig.clone());
        NearVerdict::Kept(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shingle::shingle_set;

    #[test]
    fn exact_dedup_confirms_content_not_just_hash() {
        // With a content-confirming filter, distinct texts are kept even if
        // their hashes collide; simulate by checking the bucket path
        // directly: two distinct strings must both be inserted regardless
        // of bucket assignment.
        let mut d = ExactDedup::new();
        assert!(d.insert("a"));
        assert!(d.insert("b"));
        assert!(!d.insert("a"));
        assert_eq!(d.len(), 2);
    }

    fn sig_of(text: &str, h: &MinHasher) -> Signature {
        h.signature(&shingle_set(text, 3))
    }

    #[test]
    fn near_dedup_drops_identical_and_keeps_distinct() {
        let hasher = MinHasher::new(11, 32, 4);
        let floor = NearDedup::floor_for_target(0.8, hasher.lanes());
        let mut near = NearDedup::new(hasher.clone(), floor);
        let a = "- name: Install nginx\n  apt:\n    name: nginx\n    state: present\n";
        let b = "- name: Create devops user\n  user:\n    name: devops\n    shell: /bin/bash\n";
        assert!(matches!(
            near.offer(&sig_of(a, &hasher)),
            NearVerdict::Kept(0)
        ));
        assert!(matches!(
            near.offer(&sig_of(a, &hasher)),
            NearVerdict::Duplicate { of: 0, .. }
        ));
        assert!(matches!(
            near.offer(&sig_of(b, &hasher)),
            NearVerdict::Kept(1)
        ));
    }

    #[test]
    fn near_dedup_catches_light_mutation() {
        let hasher = MinHasher::new(5, 32, 4);
        let floor = NearDedup::floor_for_target(0.8, hasher.lanes());
        let mut near = NearDedup::new(hasher.clone(), floor);
        let base = "- name: Install nginx on web hosts\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n    update_cache: true\n- name: Start nginx service\n  ansible.builtin.service:\n    name: nginx\n    state: started\n    enabled: true\n- name: Open http firewall port\n  ansible.builtin.ufw:\n    rule: allow\n    port: 80\n";
        // One token changed out of dozens: true Jaccard stays >= 0.8.
        let mutated = base.replace("update_cache: true", "update_cache: false");
        assert!(matches!(
            near.offer(&sig_of(base, &hasher)),
            NearVerdict::Kept(0)
        ));
        assert!(matches!(
            near.offer(&sig_of(&mutated, &hasher)),
            NearVerdict::Duplicate { of: 0, .. }
        ));
    }

    #[test]
    fn floor_sits_below_target() {
        let f = NearDedup::floor_for_target(0.8, 128);
        assert!(f < 0.8 && f > 0.7, "floor {f}");
    }
}
