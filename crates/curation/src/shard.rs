//! Deterministic shard writer: fixed-size shards of framed documents with
//! per-shard checksums.
//!
//! Shards are built strictly in curated-document order, so the bytes of
//! every shard — and therefore the manifest's checksums — are a pure
//! function of the kept document sequence, independent of how many workers
//! produced it. Each document is framed by a comment header carrying its
//! source channel and byte length, so shards remain valid YAML streams for
//! tokenizer training while staying mechanically splittable.

use std::io::Write as _;
use std::path::Path;

/// One finished shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Deterministic file name (`shard-00000.yamls`, …).
    pub name: String,
    /// Number of documents framed inside.
    pub docs: usize,
    /// The shard's bytes.
    pub bytes: Vec<u8>,
    /// FNV-1a 64 checksum of `bytes`.
    pub checksum: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Accumulates curated documents into fixed-size shards.
#[derive(Debug)]
pub struct ShardWriter {
    docs_per_shard: usize,
    current: Vec<u8>,
    current_docs: usize,
    shards: Vec<Shard>,
}

impl ShardWriter {
    /// Creates a writer that seals a shard every `docs_per_shard` documents.
    ///
    /// # Panics
    ///
    /// Panics if `docs_per_shard == 0`.
    pub fn new(docs_per_shard: usize) -> Self {
        assert!(docs_per_shard > 0, "docs_per_shard must be positive");
        Self {
            docs_per_shard,
            current: Vec::new(),
            current_docs: 0,
            shards: Vec::new(),
        }
    }

    /// Appends one document, sealing the current shard if it is full.
    pub fn add(&mut self, source: &str, text: &str) {
        let header = format!("# doc source={} bytes={}\n", source, text.len());
        self.current.extend_from_slice(header.as_bytes());
        self.current.extend_from_slice(text.as_bytes());
        if !text.ends_with('\n') {
            self.current.push(b'\n');
        }
        self.current_docs += 1;
        if self.current_docs == self.docs_per_shard {
            self.seal();
        }
    }

    fn seal(&mut self) {
        if self.current_docs == 0 {
            return;
        }
        let bytes = std::mem::take(&mut self.current);
        let shard = Shard {
            name: format!("shard-{:05}.yamls", self.shards.len()),
            docs: self.current_docs,
            checksum: fnv1a(&bytes),
            bytes,
        };
        self.current_docs = 0;
        self.shards.push(shard);
    }

    /// Seals any partial shard and returns the full shard list.
    pub fn finish(mut self) -> Vec<Shard> {
        self.seal();
        self.shards
    }
}

/// Writes shards to `dir` (created if missing), one file per shard.
pub fn write_shards(dir: &Path, shards: &[Shard]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for shard in shards {
        let mut f = std::fs::File::create(dir.join(&shard.name))?;
        f.write_all(&shard.bytes)?;
    }
    Ok(())
}

/// Reassembles the document texts framed inside a shard (used by tests and
/// by consumers that want the curated corpus back in memory).
pub fn unframe(shard: &Shard) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let text = std::str::from_utf8(&shard.bytes).expect("shards are utf-8");
    let mut rest = text;
    while let Some(line_end) = rest.find('\n') {
        let header = &rest[..line_end];
        let body_start = line_end + 1;
        let Some(src) = header.strip_prefix("# doc source=") else {
            break;
        };
        let (source, len) = src.split_once(" bytes=").expect("framed header");
        let len: usize = len.parse().expect("framed length");
        let body = &rest[body_start..body_start + len];
        out.push((source.to_string(), body.to_string()));
        let mut next = body_start + len;
        if rest.as_bytes().get(next) == Some(&b'\n') && !body.ends_with('\n') {
            next += 1;
        }
        rest = &rest[next.min(rest.len())..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seals_full_shards_and_final_partial() {
        let mut w = ShardWriter::new(2);
        for i in 0..5 {
            w.add("galaxy", &format!("- name: Task {i}\n"));
        }
        let shards = w.finish();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].docs, 2);
        assert_eq!(shards[2].docs, 1);
        assert_eq!(shards[0].name, "shard-00000.yamls");
        assert_eq!(shards[2].name, "shard-00002.yamls");
    }

    #[test]
    fn checksums_are_content_determined() {
        let build = || {
            let mut w = ShardWriter::new(8);
            w.add("gitlab", "- name: A\n  ping: {}\n");
            w.add("generic", "key: value\n");
            w.finish()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_ne!(a[0].checksum, 0);
    }

    #[test]
    fn unframe_round_trips() {
        let mut w = ShardWriter::new(4);
        let docs = [
            ("galaxy", "- name: First\n  ping: {}\n"),
            ("generic", "no trailing newline"),
            ("gitlab", "---\n- name: Doc marker inside\n"),
        ];
        for (s, t) in docs {
            w.add(s, t);
        }
        let shards = w.finish();
        let back = unframe(&shards[0]);
        assert_eq!(back.len(), 3);
        for ((src, text), (s, t)) in back.iter().zip(docs) {
            assert_eq!(src, s);
            assert_eq!(text, t);
        }
    }

    #[test]
    fn write_shards_creates_files() {
        let dir = std::env::temp_dir().join(format!("wisdom-shards-{}", std::process::id()));
        let mut w = ShardWriter::new(2);
        w.add("galaxy", "- name: X\n");
        let shards = w.finish();
        write_shards(&dir, &shards).expect("write");
        let read = std::fs::read(dir.join("shard-00000.yamls")).expect("read back");
        assert_eq!(read, shards[0].bytes);
        std::fs::remove_dir_all(&dir).ok();
    }
}
