//! End-to-end pipeline contracts on a real synthetic-corpus slice:
//!
//! * shard bytes and the stats manifest are byte-identical across worker
//!   counts {1, 2, 4} (the ISSUE's determinism acceptance criterion), with
//!   and without telemetry;
//! * injected near-duplicates with true shingle Jaccard ≥ 0.8 are recalled
//!   at ≥ 95%;
//! * a corpus of pairwise-disjoint documents suffers zero near-dup or
//!   exact-dup drops (no false drops).

use wisdom_corpus::{Corpus, CorpusSpec};
use wisdom_curation::{
    corpus_docs, curate, jaccard, shingle_set, CurationConfig, CurationReport, CurationTelemetry,
    DocKind, InputDoc,
};
use wisdom_prng::Prng;
use wisdom_telemetry::Registry;

fn small_corpus() -> Corpus {
    Corpus::build(&CorpusSpec {
        seed: 23,
        galaxy_files: 40,
        gitlab_files: 12,
        github_ansible_files: 25,
        generic_files: 20,
        pile_docs: 8,
        pile_yaml_fraction: 0.1,
        bigquery_docs: 8,
        bigpython_docs: 8,
    })
}

fn config(workers: usize) -> CurationConfig {
    CurationConfig {
        workers,
        queue_depth: 8,
        shard_docs: 16,
        seed: 77,
        ..CurationConfig::default()
    }
}

type ShardFingerprint = Vec<(String, usize, u64, Vec<u8>)>;

fn output_fingerprint(report: &CurationReport) -> (ShardFingerprint, String) {
    (
        report
            .shards
            .iter()
            .map(|s| (s.name.clone(), s.docs, s.checksum, s.bytes.clone()))
            .collect(),
        report.manifest_json(),
    )
}

#[test]
fn shard_output_is_byte_identical_across_worker_counts() {
    let docs = corpus_docs(&small_corpus());
    let baseline = curate(docs.clone(), &config(1));
    assert!(baseline.kept > 0, "pipeline kept nothing");
    assert!(!baseline.shards.is_empty());
    let baseline_fp = output_fingerprint(&baseline);

    for workers in [2usize, 4] {
        let report = curate(docs.clone(), &config(workers));
        assert_eq!(
            output_fingerprint(&report),
            baseline_fp,
            "worker count {workers} changed the curated output"
        );
        assert_eq!(report, baseline, "full report differs at {workers} workers");
    }
}

#[test]
fn telemetry_does_not_change_the_output() {
    let docs = corpus_docs(&small_corpus());
    let plain = curate(docs.clone(), &config(2));
    let registry = Registry::new();
    let instrumented = curate(
        docs,
        &CurationConfig {
            telemetry: Some(CurationTelemetry::new(&registry)),
            ..config(2)
        },
    );
    assert_eq!(
        output_fingerprint(&plain),
        output_fingerprint(&instrumented)
    );
    // And the counters agree with the report.
    let text = registry.render();
    let sample = |series: &str| wisdom_telemetry::sample_value(&text, series).unwrap_or(-1.0);
    assert_eq!(
        sample("wisdom_curation_docs_total{stage=\"ingest\"}") as usize,
        instrumented.ingested
    );
    assert_eq!(
        sample("wisdom_curation_docs_total{stage=\"kept\"}") as usize,
        instrumented.kept
    );
}

/// Appends a parse-safe mutation (a trailing YAML comment, and a benign
/// value swap when present) that perturbs only a few shingles.
fn mutate(text: &str, i: usize, rng: &mut Prng) -> String {
    let mut out = text.replace("state: present", "state: latest");
    if out == text && rng.chance(0.5) {
        out = text.replace("enabled: true", "enabled: yes");
    }
    out.push_str(&format!(
        "# mirrored copy {i} tag {}\n",
        rng.range_usize(10, 99)
    ));
    out
}

#[test]
fn injected_near_duplicates_are_recalled_at_95_percent() {
    let corpus = small_corpus();
    let mut docs = corpus_docs(&corpus);
    let cfg = config(2);

    // First pass: find which documents the base pipeline keeps, so mutants
    // are injected only for surviving, big-enough documents.
    let base_report = curate(docs.clone(), &cfg);
    let kept_texts: Vec<String> = base_report
        .kept_docs
        .iter()
        .map(|(_, t)| t.clone())
        .collect();

    let mut rng = Prng::seed_from_u64(99);
    let mut injected = 0usize;
    let mut eligible_idx = Vec::new();
    for (i, text) in kept_texts.iter().enumerate() {
        let base_set = shingle_set(text, cfg.shingle_k);
        if base_set.len() < 40 {
            continue; // tiny docs can dip under 0.8 true Jaccard
        }
        let mutant = mutate(text, i, &mut rng);
        let true_j = jaccard(&base_set, &shingle_set(&mutant, cfg.shingle_k));
        if true_j < 0.8 {
            continue; // only pairs at the target similarity count
        }
        docs.push(InputDoc {
            source: "injected".to_string(),
            kind: DocKind::Ansible,
            text: mutant,
        });
        injected += 1;
        eligible_idx.push(i);
        if injected == 24 {
            break;
        }
    }
    assert!(
        injected >= 10,
        "corpus too small to inject from ({injected})"
    );

    let report = curate(docs, &cfg);
    let caught = report
        .per_source
        .iter()
        .find(|(s, _)| s == "injected")
        .map(|(_, c)| c.ingested - c.kept)
        .unwrap_or(0);
    let recall = caught as f64 / injected as f64;
    assert!(
        recall >= 0.95,
        "near-duplicate recall {recall:.3} ({caught}/{injected})"
    );
}

#[test]
fn zero_false_drops_on_a_distinct_corpus() {
    // Pairwise-disjoint vocabularies: nothing here is a near-duplicate of
    // anything else, so every parse-clean document must be kept.
    let docs: Vec<InputDoc> = (0..60)
        .map(|d| {
            let body: Vec<String> = (0..12)
                .map(|k| format!("key_{d}_{k}: value_{d}_{k}"))
                .collect();
            InputDoc {
                source: "distinct".to_string(),
                kind: DocKind::Generic,
                text: format!("{}\n", body.join("\n")),
            }
        })
        .collect();
    let report = curate(docs, &config(4));
    assert_eq!(report.near_dups, 0, "false near-dup drops");
    assert_eq!(report.exact_dups, 0, "false exact-dup drops");
    assert_eq!(report.kept, 60);
}
