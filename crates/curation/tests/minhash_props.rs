//! Property tests for the MinHash near-dedup machinery.
//!
//! Three contracts back the pipeline's dedup guarantees:
//!
//! 1. the signature-agreement estimator tracks the true shingle Jaccard
//!    within statistical tolerance (`se = sqrt(j(1-j)/H)`);
//! 2. LSH banding recalls injected near-duplicates whose true Jaccard is at
//!    least the 0.8 target;
//! 3. documents with disjoint vocabularies are never dropped (no false
//!    positives among genuinely distinct docs).

use proptest::prelude::*;
use wisdom_curation::{jaccard, shingle_set, MinHasher, NearDedup, NearVerdict};

const BANDS: usize = 32;
const ROWS: usize = 4;
const LANES: usize = BANDS * ROWS;

/// Builds a document from word ids: `w17 w3 w99 …` with line breaks so the
/// tokenizer sees it like YAML-ish text.
fn doc_from_words(words: &[u32], prefix: &str) -> String {
    let mut s = String::new();
    for (i, w) in words.iter().enumerate() {
        s.push_str(&format!("{prefix}{w}"));
        s.push(if i % 8 == 7 { '\n' } else { ' ' });
    }
    s.push('\n');
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// |estimated − true| stays within five standard errors (+ a small
    /// discretization allowance) of the true Jaccard, across overlapping
    /// word streams of varied length and overlap.
    #[test]
    fn estimate_tracks_true_jaccard(
        seed in 0u64..1_000_000,
        shared_len in 20usize..160,
        a_extra in 0usize..80,
        b_extra in 0usize..80,
    ) {
        let shared: Vec<u32> = (0..shared_len as u32).collect();
        let a_words: Vec<u32> = shared.iter().copied()
            .chain((0..a_extra as u32).map(|i| 10_000 + i))
            .collect();
        let b_words: Vec<u32> = shared.iter().copied()
            .chain((0..b_extra as u32).map(|i| 20_000 + i))
            .collect();
        let a = shingle_set(&doc_from_words(&a_words, "w"), 3);
        let b = shingle_set(&doc_from_words(&b_words, "w"), 3);
        let true_j = jaccard(&a, &b);

        let hasher = MinHasher::new(seed, BANDS, ROWS);
        let est = hasher.estimate(&hasher.signature(&a), &hasher.signature(&b));

        let se = (true_j * (1.0 - true_j) / LANES as f64).sqrt();
        let tolerance = 5.0 * se + 0.04;
        prop_assert!(
            (est - true_j).abs() <= tolerance,
            "estimate {est:.3} vs true {true_j:.3} (tolerance {tolerance:.3})"
        );
    }

    /// A mutated copy whose true shingle Jaccard stays ≥ 0.8 is recalled as
    /// a near-duplicate of its original.
    #[test]
    fn lsh_recalls_injected_near_duplicates(
        seed in 0u64..1_000_000,
        len in 60usize..200,
        mutations in 1usize..4,
    ) {
        let words: Vec<u32> = (0..len as u32).collect();
        let base = doc_from_words(&words, "w");
        // Mutate a few spread-out words: each kills at most k=3 shingles.
        let mut mutated_words = words.clone();
        for m in 0..mutations {
            let pos = (m * len) / mutations + m;
            mutated_words[pos.min(len - 1)] = 90_000 + m as u32;
        }
        let mutated = doc_from_words(&mutated_words, "w");

        let base_set = shingle_set(&base, 3);
        let mut_set = shingle_set(&mutated, 3);
        let true_j = jaccard(&base_set, &mut_set);
        // (no prop_assume in the vendored proptest: skip sub-target pairs)
        if true_j >= 0.8 {
            let hasher = MinHasher::new(seed, BANDS, ROWS);
            let floor = NearDedup::floor_for_target(0.8, hasher.lanes());
            let mut near = NearDedup::new(hasher.clone(), floor);
            prop_assert!(matches!(near.offer(&hasher.signature(&base_set)), NearVerdict::Kept(0)));
            let verdict = near.offer(&hasher.signature(&mut_set));
            prop_assert!(
                matches!(verdict, NearVerdict::Duplicate { of: 0, .. }),
                "true Jaccard {true_j:.3} escaped as {verdict:?}"
            );
        }
    }

    /// Documents built from pairwise-disjoint vocabularies are all kept:
    /// the near-dedup stage never drops a genuinely distinct document.
    #[test]
    fn no_false_drops_among_disjoint_docs(
        seed in 0u64..1_000_000,
        count in 2usize..24,
        len in 10usize..60,
    ) {
        let hasher = MinHasher::new(seed, BANDS, ROWS);
        let floor = NearDedup::floor_for_target(0.8, hasher.lanes());
        let mut near = NearDedup::new(hasher.clone(), floor);
        for d in 0..count {
            let words: Vec<u32> = (0..len as u32).collect();
            // Per-document word prefix makes vocabularies disjoint.
            let text = doc_from_words(&words, &format!("doc{d}word"));
            let sig = hasher.signature(&shingle_set(&text, 3));
            let verdict = near.offer(&sig);
            prop_assert!(
                matches!(verdict, NearVerdict::Kept(idx) if idx == d),
                "distinct doc {d} was dropped: {verdict:?}"
            );
        }
    }
}
