//! BLEU for YAML: n-gram precision with ORANGE-style smoothing (the paper
//! cites Papineni et al. and Lin & Och) and the standard brevity penalty.
//!
//! "Since the sequences of tokens in an Ansible YAML file are important,
//! while some reordering is permitted, the BLEU score's basis on n-gram
//! coverage suggests it could be a useful metric." (§5.1)

use std::collections::HashMap;

const MAX_N: usize = 4;

/// Tokenizes YAML-ish text for BLEU: identifier/number runs and individual
/// punctuation marks; whitespace separates but indentation depth is kept as
/// a token so structural errors cost n-grams.
pub fn bleu_tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for line in text.lines() {
        let indent = line.len() - line.trim_start_matches(' ').len();
        if !line.trim().is_empty() {
            tokens.push(format!("<ind{indent}>"));
        }
        let mut current = String::new();
        for c in line.trim_start_matches(' ').chars() {
            if c.is_alphanumeric() || c == '_' {
                current.push(c);
            } else {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                if !c.is_whitespace() {
                    tokens.push(c.to_string());
                }
            }
        }
        if !current.is_empty() {
            tokens.push(current);
        }
    }
    tokens
}

fn ngram_counts(tokens: &[String], n: usize) -> HashMap<&[String], usize> {
    let mut map: HashMap<&[String], usize> = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *map.entry(w).or_insert(0) += 1;
        }
    }
    map
}

/// Sentence-level smoothed BLEU-4 in `[0, 100]`.
///
/// Uses add-one smoothing on the modified n-gram precisions for n ≥ 2
/// (Lin & Och 2004), so short predictions do not collapse to zero.
///
/// # Examples
///
/// ```
/// let gold = "ansible.builtin.apt:\n  name: nginx\n  state: present\n";
/// assert!((wisdom_metrics::sentence_bleu(gold, gold) - 100.0).abs() < 1e-6);
/// assert_eq!(wisdom_metrics::sentence_bleu(gold, ""), 0.0);
/// ```
pub fn sentence_bleu(reference: &str, candidate: &str) -> f64 {
    let ref_tokens = bleu_tokenize(reference);
    let cand_tokens = bleu_tokenize(candidate);
    if cand_tokens.is_empty() || ref_tokens.is_empty() {
        return if cand_tokens.is_empty() && ref_tokens.is_empty() {
            100.0
        } else {
            0.0
        };
    }
    let mut log_sum = 0.0;
    for n in 1..=MAX_N {
        let ref_counts = ngram_counts(&ref_tokens, n);
        let cand_counts = ngram_counts(&cand_tokens, n);
        let total: usize = cand_counts.values().sum();
        let mut matched = 0usize;
        for (gram, &count) in &cand_counts {
            let ref_count = ref_counts.get(gram).copied().unwrap_or(0);
            matched += count.min(ref_count);
        }
        let (num, den) = if n == 1 {
            (matched as f64, total as f64)
        } else {
            // add-one smoothing for higher-order n-grams
            (matched as f64 + 1.0, total as f64 + 1.0)
        };
        if den == 0.0 || num == 0.0 {
            return 0.0;
        }
        log_sum += (num / den).ln();
    }
    let precision_geo_mean = (log_sum / MAX_N as f64).exp();
    let bp = brevity_penalty(ref_tokens.len(), cand_tokens.len());
    100.0 * bp * precision_geo_mean
}

fn brevity_penalty(ref_len: usize, cand_len: usize) -> f64 {
    if cand_len >= ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / cand_len as f64).exp()
    }
}

/// Corpus-level BLEU: pools n-gram statistics over all pairs (the classical
/// definition); also in `[0, 100]`.
pub fn corpus_bleu<'a, I>(pairs: I) -> f64
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let tokenized: Vec<(Vec<String>, Vec<String>)> = pairs
        .into_iter()
        .map(|(r, c)| (bleu_tokenize(r), bleu_tokenize(c)))
        .collect();
    if tokenized.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for n in 1..=MAX_N {
        let mut matched = 0usize;
        let mut total = 0usize;
        for (r, c) in &tokenized {
            let rc = ngram_counts(r, n);
            let cc = ngram_counts(c, n);
            total += cc.values().sum::<usize>();
            for (gram, &count) in &cc {
                matched += count.min(rc.get(gram).copied().unwrap_or(0));
            }
        }
        let (num, den) = if n == 1 {
            (matched as f64, total as f64)
        } else {
            (matched as f64 + 1.0, total as f64 + 1.0)
        };
        if den == 0.0 || num == 0.0 {
            return 0.0;
        }
        log_sum += (num / den).ln();
    }
    let ref_len: usize = tokenized.iter().map(|(r, _)| r.len()).sum();
    let cand_len: usize = tokenized.iter().map(|(_, c)| c.len()).sum();
    100.0 * brevity_penalty(ref_len, cand_len) * (log_sum / MAX_N as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLD: &str = "ansible.builtin.service:\n  name: nginx\n  state: started\n";

    #[test]
    fn identical_scores_100() {
        assert!((sentence_bleu(GOLD, GOLD) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_candidate_scores_0() {
        assert_eq!(sentence_bleu(GOLD, ""), 0.0);
    }

    #[test]
    fn partial_overlap_between_0_and_100() {
        let cand = "ansible.builtin.service:\n  name: apache\n  state: started\n";
        let b = sentence_bleu(GOLD, cand);
        assert!(b > 30.0 && b < 100.0, "{b}");
    }

    #[test]
    fn unrelated_text_scores_low() {
        let cand = "completely unrelated words here\n";
        let b = sentence_bleu(GOLD, cand);
        assert!(b < 10.0, "{b}");
    }

    #[test]
    fn closer_candidate_scores_higher() {
        let close = "ansible.builtin.service:\n  name: nginx\n  state: stopped\n";
        let far = "ansible.builtin.user:\n  name: deploy\n";
        assert!(sentence_bleu(GOLD, close) > sentence_bleu(GOLD, far));
    }

    #[test]
    fn indentation_matters() {
        let misindented = "ansible.builtin.service:\nname: nginx\nstate: started\n";
        let b = sentence_bleu(GOLD, misindented);
        assert!(b < 100.0 - 1.0, "indentation change should cost: {b}");
    }

    #[test]
    fn brevity_penalizes_short_output() {
        let short = "ansible.builtin.service:\n";
        let long_enough = GOLD;
        assert!(sentence_bleu(GOLD, short) < sentence_bleu(GOLD, long_enough));
    }

    #[test]
    fn corpus_bleu_perfect_and_aggregate() {
        let pairs = vec![(GOLD, GOLD), (GOLD, GOLD)];
        assert!((corpus_bleu(pairs) - 100.0).abs() < 1.0);
        let mixed = vec![(GOLD, GOLD), (GOLD, "ansible.builtin.user:\n  name: x\n")];
        let b = corpus_bleu(mixed);
        assert!(b > 10.0 && b < 100.0, "{b}");
    }

    #[test]
    fn tokenizer_captures_indent_levels() {
        let toks = bleu_tokenize("a:\n  b: 1\n");
        assert!(toks.contains(&"<ind0>".to_string()));
        assert!(toks.contains(&"<ind2>".to_string()));
    }
}
