//! The **Ansible Aware** metric (§5.1): a structure-aware similarity that
//! "uses knowledge of the Ansible YAML syntax to compare the modules,
//! keywords and parameters that comprise an Ansible task or playbook".
//!
//! Faithful to the paper's description:
//!
//! * key order is insignificant (tasks are mappings);
//! * the `name` key is ignored (no effect on execution);
//! * the score of a task is the average over the *target's* top-level
//!   key-value pairs; each pair scores `(key_score + value_score) / 2`;
//! * keys missing from the prediction score 0; keys *inserted* by the
//!   prediction are ignored;
//! * list/dict values are scored recursively by averaging entries;
//! * module names are normalized to their FQCN before comparison, and the
//!   legacy `k=v` string form is converted to a mapping;
//! * near-equivalent modules (`command`/`shell`, `copy`/`template`,
//!   `package`/`apt`/`dnf`/`yum`) receive a partial key score averaged with
//!   the score of their arguments.

use wisdom_ansible::{is_task_keyword, normalize_document, Equivalence, ModuleRegistry};
use wisdom_yaml::{Mapping, Value};

/// Partial key credit for equivalent-but-different modules.
const EQUIV_KEY_SCORE: f64 = 0.5;

/// Scores a prediction document against the target document, in `[0, 100]`.
///
/// Both inputs are standalone YAML documents as produced by
/// `Sample::scoring_document`: either a one-task file or a one-play
/// playbook. An unparseable prediction scores 0.
///
/// # Examples
///
/// ```
/// let target = "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
/// assert!((wisdom_metrics::ansible_aware(target, target) - 100.0).abs() < 1e-9);
/// assert_eq!(wisdom_metrics::ansible_aware(target, "not: [yaml"), 0.0);
/// ```
pub fn ansible_aware(target_doc: &str, prediction_doc: &str) -> f64 {
    let Ok(target) = wisdom_yaml::parse(target_doc) else {
        return 0.0;
    };
    let Ok(pred) = wisdom_yaml::parse(prediction_doc) else {
        return 0.0;
    };
    let target = normalize_document(&target);
    let pred = normalize_document(&pred);
    let (Some(t_items), Some(p_items)) = (target.as_seq(), pred.as_seq()) else {
        return 0.0;
    };
    if t_items.is_empty() {
        return 0.0;
    }
    // Compare item-by-item (scoring documents hold exactly one item; longer
    // sequences average).
    let mut total = 0.0;
    for (i, t) in t_items.iter().enumerate() {
        let score = match p_items.get(i) {
            Some(p) => unit_score(t, p),
            None => 0.0,
        };
        total += score;
    }
    100.0 * total / t_items.len() as f64
}

/// Scores one task or play mapping pair in `[0, 1]`.
fn unit_score(target: &Value, pred: &Value) -> f64 {
    let (Some(t), Some(p)) = (target.as_map(), pred.as_map()) else {
        return if target == pred { 1.0 } else { 0.0 };
    };
    if t.contains_key("hosts") || t.contains_key("tasks") {
        play_score(t, p)
    } else {
        task_score(t, p)
    }
}

fn play_score(target: &Mapping, pred: &Mapping) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (key, t_value) in target.iter() {
        if key == "name" {
            continue;
        }
        count += 1;
        let Some(p_value) = pred.get(key) else {
            continue; // missing -> 0
        };
        let value_score =
            if key == "tasks" || key == "pre_tasks" || key == "post_tasks" || key == "handlers" {
                task_list_score(t_value, p_value)
            } else {
                value_score(t_value, p_value)
            };
        total += (1.0 + value_score) / 2.0;
    }
    if count == 0 {
        return 0.0;
    }
    total / count as f64
}

fn task_list_score(target: &Value, pred: &Value) -> f64 {
    let (Some(t_items), Some(p_items)) = (target.as_seq(), pred.as_seq()) else {
        return 0.0;
    };
    if t_items.is_empty() {
        return if p_items.is_empty() { 1.0 } else { 0.0 };
    }
    let mut total = 0.0;
    for (i, t) in t_items.iter().enumerate() {
        if let Some(p) = p_items.get(i) {
            let (Some(tm), Some(pm)) = (t.as_map(), p.as_map()) else {
                continue;
            };
            total += task_score(tm, pm);
        }
    }
    total / t_items.len() as f64
}

fn task_score(target: &Mapping, pred: &Mapping) -> f64 {
    let reg = ModuleRegistry::global();
    let t_module = target.keys().find(|k| !is_task_keyword(k));
    let p_module = pred.keys().find(|k| !is_task_keyword(k));
    let mut total = 0.0;
    let mut count = 0usize;
    for (key, t_value) in target.iter() {
        if key == "name" {
            continue;
        }
        count += 1;
        let is_module_key = Some(key) == t_module;
        if is_module_key {
            // Module comparison with FQCN + equivalence handling.
            let Some(p_mod) = p_module else {
                continue; // no module in prediction -> 0
            };
            match reg.same_or_equivalent(key, p_mod) {
                Equivalence::Same => {
                    let args =
                        value_score(t_value, pred.get(p_mod).expect("module key from iteration"));
                    total += (1.0 + args) / 2.0;
                }
                Equivalence::Equivalent => {
                    let args =
                        value_score(t_value, pred.get(p_mod).expect("module key from iteration"));
                    total += (EQUIV_KEY_SCORE + args) / 2.0;
                }
                Equivalence::Different => {}
            }
        } else {
            let Some(p_value) = pred.get(key) else {
                continue; // missing keyword -> 0
            };
            total += (1.0 + value_score(t_value, p_value)) / 2.0;
        }
    }
    if count == 0 {
        return 0.0;
    }
    total / count as f64
}

/// Recursive value comparison in `[0, 1]`.
fn value_score(target: &Value, pred: &Value) -> f64 {
    match (target, pred) {
        (Value::Map(t), Value::Map(p)) => {
            // An empty target map places no constraints on the prediction.
            if t.is_empty() {
                return 1.0;
            }
            let mut total = 0.0;
            for (k, tv) in t.iter() {
                if let Some(pv) = p.get(k) {
                    total += (1.0 + value_score(tv, pv)) / 2.0;
                }
            }
            total / t.len() as f64
        }
        (Value::Seq(t), Value::Seq(p)) => {
            if t.is_empty() {
                return 1.0;
            }
            let mut total = 0.0;
            for (i, tv) in t.iter().enumerate() {
                if let Some(pv) = p.get(i) {
                    total += value_score(tv, pv);
                }
            }
            total / t.len() as f64
        }
        (t, p) => {
            if t == p {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TARGET: &str =
        "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n";

    #[test]
    fn identical_scores_100() {
        assert!((ansible_aware(TARGET, TARGET) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn key_order_is_insignificant() {
        let reordered =
            "- ansible.builtin.apt:\n    state: present\n    name: nginx\n  name: Install nginx\n";
        assert!((ansible_aware(TARGET, reordered) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn name_differences_ignored() {
        let renamed =
            "- name: totally different words\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
        assert!((ansible_aware(TARGET, renamed) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn short_module_name_normalized_to_fqcn() {
        let short = "- name: Install nginx\n  apt:\n    name: nginx\n    state: present\n";
        assert!((ansible_aware(TARGET, short) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn legacy_kv_args_normalized() {
        let kv = "- name: Install nginx\n  apt: name=nginx state=present\n";
        assert!((ansible_aware(TARGET, kv) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_param_value_costs_partially() {
        let wrong = "- name: x\n  ansible.builtin.apt:\n    name: apache2\n    state: present\n";
        let s = ansible_aware(TARGET, wrong);
        // one of two params wrong: value score = (1*0.5 + 1)/2... the task
        // has a single module pair whose value is half right.
        assert!(s > 50.0 && s < 100.0, "{s}");
    }

    #[test]
    fn missing_param_scores_lower_than_wrong_param() {
        let missing = "- name: x\n  ansible.builtin.apt:\n    name: nginx\n";
        let wrong = "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    state: absent\n";
        let sm = ansible_aware(TARGET, missing);
        let sw = ansible_aware(TARGET, wrong);
        // missing: pair (1+args)/2 where args misses 'state' entirely;
        // wrong: args has the key but wrong value -> gets key credit.
        assert!(sw > sm, "wrong {sw} vs missing {sm}");
    }

    #[test]
    fn inserted_keys_are_ignored() {
        let extra = "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n    update_cache: true\n  become: true\n";
        assert!((ansible_aware(TARGET, extra) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn equivalent_module_partial_credit() {
        let target = "- name: c\n  ansible.builtin.copy:\n    src: a\n    dest: b\n";
        let equiv = "- name: c\n  ansible.builtin.template:\n    src: a\n    dest: b\n";
        let different = "- name: c\n  ansible.builtin.user:\n    name: a\n";
        let se = ansible_aware(target, equiv);
        let sd = ansible_aware(target, different);
        // Equivalent module with identical args: (0.5 + 1.0)/2 = 0.75.
        assert!((se - 75.0).abs() < 1.0, "{se}");
        assert_eq!(sd, 0.0);
    }

    #[test]
    fn package_family_equivalence() {
        let yum_pred = "- name: x\n  ansible.builtin.yum:\n    name: nginx\n    state: present\n";
        let s = ansible_aware(TARGET, yum_pred);
        assert!((s - 75.0).abs() < 1.0, "{s}");
    }

    #[test]
    fn missing_module_scores_0() {
        let none = "- name: x\n  become: true\n";
        // Target has exactly one scored pair (the module), missing -> 0.
        assert_eq!(ansible_aware(TARGET, none), 0.0);
    }

    #[test]
    fn keywords_compared_too() {
        let target =
            "- name: x\n  ansible.builtin.ping: {}\n  when: deploy_enabled\n  become: true\n";
        let miss_kw = "- name: x\n  ansible.builtin.ping: {}\n  become: true\n";
        let s = ansible_aware(target, miss_kw);
        // 3 pairs; module 1.0, become 1.0, when 0 -> 2/3.
        assert!((s - 66.67).abs() < 1.0, "{s}");
    }

    #[test]
    fn unparseable_prediction_scores_0() {
        assert_eq!(ansible_aware(TARGET, "::: not yaml {"), 0.0);
        assert_eq!(ansible_aware(TARGET, ""), 0.0);
    }

    #[test]
    fn playbook_scoring_averages_play_keys() {
        let target = "- name: P\n  hosts: web\n  become: true\n  tasks:\n    - name: a\n      ansible.builtin.ping: {}\n";
        let perfect = target;
        assert!((ansible_aware(target, perfect) - 100.0).abs() < 1e-9);
        let wrong_hosts = "- name: P\n  hosts: db\n  become: true\n  tasks:\n    - name: a\n      ansible.builtin.ping: {}\n";
        let s = ansible_aware(target, wrong_hosts);
        // 3 pairs: hosts (1+0)/2, become 1, tasks 1 -> (0.5+1+1)/3 = 83.3
        assert!((s - 83.33).abs() < 1.0, "{s}");
    }

    #[test]
    fn playbook_task_lists_compared_positionally() {
        let target = "- name: P\n  hosts: all\n  tasks:\n    - name: a\n      ansible.builtin.ping: {}\n    - name: b\n      ansible.builtin.setup: {}\n";
        let half =
            "- name: P\n  hosts: all\n  tasks:\n    - name: a\n      ansible.builtin.ping: {}\n";
        let s = ansible_aware(target, half);
        // hosts 1.0; tasks: first task 1.0, second missing 0 -> 0.5 ->
        // pair (1+0.5)/2 = 0.75 -> (1 + 0.75)/2 = 0.875
        assert!((s - 87.5).abs() < 1.0, "{s}");
    }

    #[test]
    fn list_values_recursive() {
        let target = "- name: x\n  vyos.vyos.vyos_config:\n    lines:\n      - set system host-name vyos\n      - set service ssh\n";
        let partial =
            "- name: x\n  vyos.vyos.vyos_config:\n    lines:\n      - set system host-name vyos\n";
        let s = ansible_aware(target, partial);
        assert!(s > 50.0 && s < 100.0, "{s}");
    }
}
