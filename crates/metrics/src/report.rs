//! Per-sample scoring and aggregation into the paper's four table columns.

use crate::ansible_aware::ansible_aware;
use crate::bleu::sentence_bleu;

/// Exact Match after whitespace normalization (trailing spaces and final
/// newlines do not count as differences).
///
/// # Examples
///
/// ```
/// assert!(wisdom_metrics::exact_match("a: 1\n", "a: 1"));
/// assert!(!wisdom_metrics::exact_match("a: 1\n", "a: 2\n"));
/// ```
pub fn exact_match(target: &str, prediction: &str) -> bool {
    normalize_ws(target) == normalize_ws(prediction)
}

fn normalize_ws(s: &str) -> String {
    let mut out: Vec<&str> = s.lines().map(|l| l.trim_end()).collect();
    while out.last().is_some_and(|l| l.is_empty()) {
        out.pop();
    }
    out.join("\n")
}

/// Whether a prediction document satisfies the Ansible schema
/// (**Schema Correct**, §5.1 — prediction-only, no target involved).
pub fn schema_correct(prediction_doc: &str) -> bool {
    wisdom_ansible::is_schema_correct(prediction_doc, wisdom_ansible::LintTarget::Auto)
}

/// All four metrics for one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleScores {
    /// Prediction satisfies the schema.
    pub schema_correct: bool,
    /// Exact match against the gold completion.
    pub exact_match: bool,
    /// Smoothed sentence BLEU in `[0, 100]`.
    pub bleu: f64,
    /// Ansible Aware in `[0, 100]`.
    pub ansible_aware: f64,
}

/// Scores one sample given the raw completion bodies and the reconstructed
/// scoring documents.
///
/// * `target_body` / `predicted_body`: the text after the `- name:` line
///   (EM and BLEU operate here, like the paper's token comparison);
/// * `target_doc` / `predicted_doc`: standalone reconstructions (Schema
///   Correct and Ansible Aware operate here).
pub fn score_sample(
    target_body: &str,
    predicted_body: &str,
    target_doc: &str,
    predicted_doc: &str,
) -> SampleScores {
    SampleScores {
        schema_correct: schema_correct(predicted_doc),
        exact_match: exact_match(target_body, predicted_body),
        bleu: sentence_bleu(target_body, predicted_body),
        ansible_aware: ansible_aware(target_doc, predicted_doc),
    }
}

/// Aggregates per-sample scores into table-row percentages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsAccumulator {
    count: usize,
    schema_correct: usize,
    exact_match: usize,
    bleu_sum: f64,
    aware_sum: f64,
}

impl MetricsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample's scores.
    pub fn add(&mut self, s: &SampleScores) {
        self.count += 1;
        if s.schema_correct {
            self.schema_correct += 1;
        }
        if s.exact_match {
            self.exact_match += 1;
        }
        self.bleu_sum += s.bleu;
        self.aware_sum += s.ansible_aware;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MetricsAccumulator) {
        self.count += other.count;
        self.schema_correct += other.schema_correct;
        self.exact_match += other.exact_match;
        self.bleu_sum += other.bleu_sum;
        self.aware_sum += other.aware_sum;
    }

    /// Number of scored samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Finalizes into a summary (all values in `[0, 100]`).
    pub fn summary(&self) -> MetricsSummary {
        let n = self.count.max(1) as f64;
        MetricsSummary {
            count: self.count,
            schema_correct: 100.0 * self.schema_correct as f64 / n,
            exact_match: 100.0 * self.exact_match as f64 / n,
            bleu: self.bleu_sum / n,
            ansible_aware: self.aware_sum / n,
        }
    }
}

impl Extend<SampleScores> for MetricsAccumulator {
    fn extend<I: IntoIterator<Item = SampleScores>>(&mut self, iter: I) {
        for s in iter {
            self.add(&s);
        }
    }
}

impl FromIterator<SampleScores> for MetricsAccumulator {
    fn from_iter<I: IntoIterator<Item = SampleScores>>(iter: I) -> Self {
        let mut acc = MetricsAccumulator::new();
        acc.extend(iter);
        acc
    }
}

/// One table row: the four columns of Tables 3–5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSummary {
    /// Samples scored.
    pub count: usize,
    /// % schema-correct predictions.
    pub schema_correct: f64,
    /// % exact matches.
    pub exact_match: f64,
    /// Mean sentence BLEU.
    pub bleu: f64,
    /// Mean Ansible Aware.
    pub ansible_aware: f64,
}

impl std::fmt::Display for MetricsSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SC {:5.2}  EM {:5.2}  BLEU {:5.2}  AA {:5.2}  (n={})",
            self.schema_correct, self.exact_match, self.bleu, self.ansible_aware, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_ignores_trailing_ws() {
        assert!(exact_match("a: 1\nb: 2\n", "a: 1\nb: 2"));
        assert!(exact_match("a: 1  \n\n", "a: 1"));
        assert!(!exact_match("a: 1", "a: 1\nb: 2"));
    }

    #[test]
    fn schema_correct_detects_bad_yaml() {
        assert!(schema_correct("- name: x\n  ansible.builtin.ping: {}\n"));
        assert!(!schema_correct("- name: x\n  nonexistent_module: {}\n"));
        assert!(!schema_correct("broken: ["));
    }

    #[test]
    fn perfect_sample_scores_perfectly() {
        let body = "  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
        let doc = "- name: x\n  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
        let s = score_sample(body, body, doc, doc);
        assert!(s.schema_correct);
        assert!(s.exact_match);
        assert!((s.bleu - 100.0).abs() < 1e-6);
        assert!((s.ansible_aware - 100.0).abs() < 1e-6);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = MetricsAccumulator::new();
        acc.add(&SampleScores {
            schema_correct: true,
            exact_match: true,
            bleu: 100.0,
            ansible_aware: 100.0,
        });
        acc.add(&SampleScores {
            schema_correct: false,
            exact_match: false,
            bleu: 50.0,
            ansible_aware: 0.0,
        });
        let s = acc.summary();
        assert_eq!(s.count, 2);
        assert!((s.schema_correct - 50.0).abs() < 1e-9);
        assert!((s.exact_match - 50.0).abs() < 1e-9);
        assert!((s.bleu - 75.0).abs() < 1e-9);
        assert!((s.ansible_aware - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential_adds() {
        let a_scores = SampleScores {
            schema_correct: true,
            exact_match: false,
            bleu: 70.0,
            ansible_aware: 60.0,
        };
        let b_scores = SampleScores {
            schema_correct: false,
            exact_match: true,
            bleu: 30.0,
            ansible_aware: 90.0,
        };
        let mut a = MetricsAccumulator::new();
        a.add(&a_scores);
        let mut b = MetricsAccumulator::new();
        b.add(&b_scores);
        a.merge(&b);
        let both: MetricsAccumulator = [a_scores, b_scores].into_iter().collect();
        assert_eq!(a.summary(), both.summary());
    }

    #[test]
    fn empty_accumulator_summary_is_zero() {
        let s = MetricsAccumulator::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.bleu, 0.0);
    }

    #[test]
    fn paper_observation_em_without_schema_correct() {
        // "a sample with a perfect Exact Match score may have a Schema
        // Correct score of 0" — historical k=v form matches the target
        // exactly but fails the strict schema.
        let body = "  apt: name=nginx state=present\n";
        let doc = "- name: x\n  apt: name=nginx state=present\n";
        let s = score_sample(body, body, doc, doc);
        assert!(s.exact_match);
        assert!(!s.schema_correct);
        assert!((s.ansible_aware - 100.0).abs() < 1e-6);
    }
}
