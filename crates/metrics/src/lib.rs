//! Evaluation metrics for NL→Ansible-YAML generation (§5.1 of the paper).
//!
//! Four metrics, two of them novel and Ansible-specific:
//!
//! * [`exact_match`] — normalized string equality of completions;
//! * [`sentence_bleu`] / [`corpus_bleu`] — smoothed BLEU-4 over YAML tokens;
//! * [`ansible_aware`] — structure-aware comparison of modules, keywords and
//!   parameters with FQCN normalization and module-equivalence partial
//!   credit;
//! * [`schema_correct`] — strict Ansible schema validity of the prediction
//!   alone.
//!
//! [`score_sample`] computes all four; [`MetricsAccumulator`] aggregates
//! them into the percentage columns of Tables 3–5.
//!
//! # Examples
//!
//! ```
//! use wisdom_metrics::{score_sample, MetricsAccumulator};
//!
//! let body = "  ansible.builtin.ping: {}\n";
//! let doc = "- name: ping it\n  ansible.builtin.ping: {}\n";
//! let scores = score_sample(body, body, doc, doc);
//! let acc: MetricsAccumulator = [scores].into_iter().collect();
//! assert_eq!(acc.summary().exact_match, 100.0);
//! ```

mod ansible_aware;
mod bleu;
mod report;

pub use ansible_aware::ansible_aware;
pub use bleu::{bleu_tokenize, corpus_bleu, sentence_bleu};
pub use report::{
    exact_match, schema_correct, score_sample, MetricsAccumulator, MetricsSummary, SampleScores,
};
