//! End-to-end pipeline tests: corpus → splits → models → evaluation, plus
//! the oracle and contamination sanity checks that pin the harness down.

use ansible_wisdom::corpus::{Corpus, GenType, PromptStyle, Sample};
use ansible_wisdom::eval::{evaluate, EvalSettings, Oracle, Profile, SampleCap, SizeClass, Zoo};
use ansible_wisdom::model::{GenerationOptions, RetrievalModel, TextGenerator};

fn test_profile() -> Profile {
    Profile::test()
}

#[test]
fn corpus_table1_counts_match_spec() {
    let profile = test_profile();
    let spec = profile.corpus_spec();
    let corpus = Corpus::build(&spec);
    assert_eq!(corpus.galaxy.len(), spec.galaxy_files);
    assert_eq!(corpus.gitlab.len(), spec.gitlab_files);
    assert_eq!(corpus.github_ansible.len(), spec.github_ansible_files);
    assert_eq!(corpus.generic.len(), spec.generic_files);
    let report = corpus.table1();
    assert!(report.contains("Galaxy"));
}

#[test]
fn splits_cover_all_generation_types_at_scale() {
    // At the quick scale the Galaxy channel is large enough that all four
    // generation types appear in the test split.
    let mut profile = Profile::test();
    profile.corpus_scale = 1_000; // more galaxy files, corpus still fast
    let spec = profile.corpus_spec();
    let corpus = Corpus::build(&spec);
    let split = ansible_wisdom::corpus::SplitSamples::build(&corpus.galaxy, profile.seed);
    for gt in GenType::ALL {
        let n = split
            .train
            .iter()
            .chain(&split.valid)
            .chain(&split.test)
            .filter(|s| s.gen_type == gt)
            .count();
        assert!(n > 0, "no samples of type {gt}");
    }
    // T+NL→T dominates, NL→PB is rare — the paper's Table 5 distribution.
    let count = |gt: GenType| split.train.iter().filter(|s| s.gen_type == gt).count();
    assert!(count(GenType::TNlToT) > count(GenType::NlToT));
    assert!(count(GenType::NlToT) > count(GenType::NlToPb));
}

#[test]
fn oracle_scores_100_on_every_metric_and_type() {
    let zoo = Zoo::build(test_profile());
    let refs: Vec<&Sample> = zoo.split.test.iter().collect();
    assert!(!refs.is_empty());
    let oracle = Oracle::new(&refs);
    let settings = EvalSettings {
        cap: SampleCap::Total(usize::MAX),
        ..EvalSettings::for_profile(&zoo.profile)
    };
    let result = evaluate(&oracle, &refs, &settings);
    assert_eq!(result.overall.count, refs.len());
    assert!(
        (result.overall.exact_match - 100.0).abs() < 1e-9,
        "oracle EM must be 100, got {}",
        result.overall.exact_match
    );
    assert!((result.overall.bleu - 100.0).abs() < 1e-6);
    assert!((result.overall.ansible_aware - 100.0).abs() < 1e-6);
    assert!((result.overall.schema_correct - 100.0).abs() < 1e-9);
}

#[test]
fn fully_contaminated_retrieval_gets_high_scores() {
    // A retrieval model whose pool contains *all* Galaxy files (full leak)
    // must score very high EM on task-type test samples — the mechanism
    // behind the paper's Codex observation, amplified to 100% leakage.
    let zoo = Zoo::build(test_profile());
    let docs: Vec<&str> = zoo.corpus.galaxy.iter().map(String::as_str).collect();
    let leaked = RetrievalModel::build("fully-leaked", docs);
    let refs: Vec<&Sample> = zoo
        .split
        .test
        .iter()
        .filter(|s| s.gen_type == GenType::NlToT || s.gen_type == GenType::TNlToT)
        .collect();
    if refs.is_empty() {
        return; // tiny split may lack task samples; covered at larger scales
    }
    let settings = EvalSettings {
        cap: SampleCap::Total(usize::MAX),
        ..EvalSettings::for_profile(&zoo.profile)
    };
    let result = evaluate(&leaked, &refs, &settings);
    assert!(
        result.overall.ansible_aware > 60.0,
        "leaked retrieval should be strong, got {}",
        result.overall.ansible_aware
    );
    assert!(
        result.overall.bleu > 50.0,
        "leaked retrieval BLEU, got {}",
        result.overall.bleu
    );
}

#[test]
fn fewshot_pipeline_runs_for_smallest_model() {
    let mut zoo = Zoo::build(test_profile());
    let spec = *ansible_wisdom::eval::spec("Wisdom-Ansible", SizeClass::S350m).expect("spec");
    let generator = zoo.fewshot_generator(&spec, None);
    let refs: Vec<&Sample> = zoo.split.test.iter().collect();
    let result = evaluate(&generator, &refs, &EvalSettings::for_profile(&zoo.profile));
    // Tiny models produce junk; only the plumbing is asserted.
    assert!(result.overall.count > 0);
    assert!(result.overall.bleu >= 0.0 && result.overall.bleu <= 100.0);
}

#[test]
fn finetuned_model_beats_or_matches_fewshot_on_bleu() {
    // Even at the tiny test scale, fine-tuning on in-distribution samples
    // should not hurt BLEU relative to the raw pre-trained model.
    let mut zoo = Zoo::build(test_profile());
    let spec = *ansible_wisdom::eval::spec("Wisdom-Ansible", SizeClass::S350m).expect("spec");
    let refs: Vec<Sample> = zoo.split.test.clone();
    let settings = EvalSettings::for_profile(&zoo.profile);

    let fewshot = zoo.fewshot_generator(&spec, None);
    let refs1: Vec<&Sample> = refs.iter().collect();
    let base = evaluate(&fewshot, &refs1, &settings);

    let tuned =
        zoo.finetuned_generator("tuned", &spec, 1024, PromptStyle::NameCompletion, 1.0, None);
    let refs2: Vec<&Sample> = refs.iter().collect();
    let after = evaluate(&tuned, &refs2, &settings);
    assert!(
        after.overall.bleu + 1e-9 >= base.overall.bleu * 0.5,
        "fine-tuning should not collapse quality: {} -> {}",
        base.overall.bleu,
        after.overall.bleu
    );
}

#[test]
fn generation_is_deterministic_across_runs() {
    let mut zoo_a = Zoo::build(test_profile());
    let mut zoo_b = Zoo::build(test_profile());
    let spec = *ansible_wisdom::eval::spec("Wisdom-Yaml", SizeClass::S350m).expect("spec");
    let gen_a = zoo_a.fewshot_generator(&spec, None);
    let gen_b = zoo_b.fewshot_generator(&spec, None);
    let prompt = "---\n- name: Install nginx\n";
    let opts = GenerationOptions {
        max_new_tokens: 24,
        ..Default::default()
    };
    assert_eq!(gen_a.complete(prompt, &opts), gen_b.complete(prompt, &opts));
}
