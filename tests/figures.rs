//! Reproduces the paper's figures: Fig. 1 (example playbook) and Fig. 2
//! (the four generation types), verifying that our pipeline treats them
//! exactly as described.

use ansible_wisdom::ansible::{is_schema_correct, standardize, LintTarget, Playbook};
use ansible_wisdom::corpus::{extract_samples, GenType, PromptStyle};
use ansible_wisdom::metrics::{ansible_aware, sentence_bleu};

/// Figure 1 of the paper, verbatim.
const FIG1: &str = "---\n- hosts: servers\n  tasks:\n    - name: Install SSH server\n      ansible.builtin.apt:\n        name: openssh-server\n        state: present\n    - name: Start SSH server\n      ansible.builtin.service:\n        name: ssh\n        state: started\n";

/// Figure 2(a/b): the VyOS network playbook.
const FIG2_PLAYBOOK: &str = "---\n- name: Network Setup Playbook\n  connection: ansible.netcommon.network_cli\n  gather_facts: false\n  hosts: all\n  tasks:\n    - name: Get config for VyOS devices\n      vyos.vyos.vyos_facts:\n        gather_subset: all\n    - name: Update the hostname\n      vyos.vyos.vyos_config:\n        backup: true\n        lines:\n          - set system host-name vyos-changed\n";

/// Figure 2(c/d): the apache role tasks.
const FIG2_TASKS: &str = "---\n- name: Ensure apache is at the latest version\n  ansible.builtin.yum:\n    name: httpd\n    state: latest\n- name: Write the apache config file\n  ansible.builtin.template:\n    src: /srv/httpd.j2\n    dest: /etc/httpd.conf\n";

#[test]
fn figure1_parses_and_is_schema_correct() {
    let pb = Playbook::parse(FIG1).expect("figure 1 must parse");
    assert_eq!(pb.plays.len(), 1);
    let tasks = pb.plays[0].flat_tasks();
    assert_eq!(tasks.len(), 2);
    assert_eq!(tasks[0].name.as_deref(), Some("Install SSH server"));
    assert_eq!(tasks[0].fqcn(), "ansible.builtin.apt");
    assert_eq!(tasks[1].fqcn(), "ansible.builtin.service");
    assert!(is_schema_correct(FIG1, LintTarget::Auto));
}

#[test]
fn figure1_round_trips_through_standardization() {
    let std1 = standardize(FIG1).expect("standardize");
    let std2 = standardize(&std1).expect("re-standardize");
    assert_eq!(std1, std2, "standardization must be idempotent");
    assert!(Playbook::parse(&std1).is_ok());
}

#[test]
fn figure2ab_yields_nl_to_pb_sample() {
    // Fig 2b: playbook with 2 tasks -> NL→PB; prompt combines names.
    let samples = extract_samples(FIG2_PLAYBOOK);
    assert_eq!(samples.len(), 1);
    let s = &samples[0];
    assert_eq!(s.gen_type, GenType::NlToPb);
    assert!(s.nl.contains("Network Setup Playbook"));
    assert!(s.nl.contains("Get config for VyOS devices"));
    assert!(s.nl.contains("Update the hostname"));
    assert!(s.context.is_empty());
    // Expected output is lines 6-17 of the figure: everything after the
    // play's name line.
    assert!(s
        .expected
        .contains("connection: ansible.netcommon.network_cli"));
    assert!(s.expected.contains("vyos.vyos.vyos_config"));
    assert!(!s.expected.contains("Network Setup Playbook"));
}

#[test]
fn figure2ab_pb_nl_to_t_from_larger_playbook() {
    // Fig 2a: add a third task so the playbook becomes PB+NL→T material.
    let three_tasks = FIG2_PLAYBOOK.to_owned()
        + "    - name: Get changed config for VyOS devices\n      vyos.vyos.vyos_facts:\n        gather_subset: all\n";
    let samples = extract_samples(&three_tasks);
    assert_eq!(samples.len(), 2);
    for s in &samples {
        assert_eq!(s.gen_type, GenType::PbNlToT);
    }
    let last = &samples[1];
    assert_eq!(last.nl, "Get changed config for VyOS devices");
    // The context is the playbook up to (but excluding) the target task —
    // exactly lines 1..=17 of Fig 2a.
    assert!(last.context.contains("Update the hostname"));
    assert!(!last.context.contains("Get changed config"));
    // The model's expected output is the task body (lines 19-20).
    assert!(last.expected.contains("vyos_facts"));
}

#[test]
fn figure2cd_task_file_samples() {
    let samples = extract_samples(FIG2_TASKS);
    assert_eq!(samples.len(), 2);
    // Fig 2d: first task = NL→T, no context.
    assert_eq!(samples[0].gen_type, GenType::NlToT);
    assert!(samples[0].context.is_empty());
    // Fig 2c: second task = T+NL→T with the first task as context.
    assert_eq!(samples[1].gen_type, GenType::TNlToT);
    assert!(samples[1].context.contains("ansible.builtin.yum"));
    let prompt = samples[1].prompt_text(PromptStyle::NameCompletion);
    assert!(prompt.ends_with("- name: Write the apache config file\n"));
}

#[test]
fn gold_completions_score_perfectly_on_all_metrics() {
    for src in [FIG2_PLAYBOOK, FIG2_TASKS] {
        for s in extract_samples(src) {
            assert!((sentence_bleu(&s.expected, &s.expected) - 100.0).abs() < 1e-6);
            let doc = s.scoring_document(&s.expected);
            assert!(
                (ansible_aware(&doc, &doc) - 100.0).abs() < 1e-6,
                "self-aware must be 100 for {doc}"
            );
            assert!(
                is_schema_correct(&doc, LintTarget::Auto),
                "gold reconstruction must be schema-correct:\n{doc}"
            );
        }
    }
}

#[test]
fn paper_equivalence_examples_hold() {
    // §5.1: command/shell, copy/template, package/apt/dnf/yum get partial
    // credit — demonstrated on the figure's own tasks.
    let target = "- name: x\n  ansible.builtin.yum:\n    name: httpd\n    state: latest\n";
    let swapped = "- name: x\n  ansible.builtin.dnf:\n    name: httpd\n    state: latest\n";
    let score = ansible_aware(target, swapped);
    assert!(score > 70.0 && score < 100.0, "partial credit, got {score}");
}
