//! Property-based tests of the metric invariants on generated Ansible
//! content: the metrics must behave like the paper describes for *any*
//! corpus sample, not just hand-picked examples.

use ansible_wisdom::ansible::{normalize_task, Task};
use ansible_wisdom::corpus::{extract_samples, generate_role_file, FileCtx};
use ansible_wisdom::metrics::{ansible_aware, exact_match, schema_correct, sentence_bleu};
use ansible_wisdom::prng::Prng;
use ansible_wisdom::yaml::Value;
use proptest::prelude::*;

/// Deterministically generates a galaxy-style role file from a seed.
fn role_file(seed: u64) -> String {
    let mut rng = Prng::seed_from_u64(seed);
    let ctx = FileCtx::galaxy(&mut rng);
    let tasks = generate_role_file(&ctx, &mut rng);
    ansible_wisdom::corpus::emit_task_file(&tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identity: every gold sample scores 100 on all four metrics.
    #[test]
    fn gold_is_perfect(seed in 0u64..10_000) {
        let file = role_file(seed);
        for s in extract_samples(&file) {
            prop_assert!(exact_match(&s.expected, &s.expected));
            prop_assert!((sentence_bleu(&s.expected, &s.expected) - 100.0).abs() < 1e-6);
            let doc = s.scoring_document(&s.expected);
            prop_assert!((ansible_aware(&doc, &doc) - 100.0).abs() < 1e-6, "doc:\n{}", doc);
            prop_assert!(schema_correct(&doc), "doc:\n{}", doc);
        }
    }

    /// Boundedness: Ansible Aware and BLEU stay within [0, 100] against a
    /// *different* sample's output.
    #[test]
    fn cross_sample_scores_bounded(seed_a in 0u64..5_000, seed_b in 5_000u64..10_000) {
        let sa = extract_samples(&role_file(seed_a));
        let sb = extract_samples(&role_file(seed_b));
        if let (Some(a), Some(b)) = (sa.first(), sb.first()) {
            let aware = ansible_aware(
                &a.scoring_document(&a.expected),
                &b.scoring_document(&b.expected),
            );
            prop_assert!((0.0..=100.0).contains(&aware), "{aware}");
            let bleu = sentence_bleu(&a.expected, &b.expected);
            prop_assert!((0.0..=100.0).contains(&bleu), "{bleu}");
            // Cross scores are (almost) never perfect.
            prop_assert!(bleu < 100.0 || a.expected == b.expected);
        }
    }

    /// Normalization invariance: Ansible Aware is unchanged by task key
    /// reordering (the paper: "the order of the key-value pairs is not
    /// significant").
    #[test]
    fn aware_invariant_under_key_order(seed in 0u64..10_000) {
        let file = role_file(seed);
        let Ok(value) = ansible_wisdom::yaml::parse(&file) else { return Ok(()); };
        let Some(items) = value.as_seq() else { return Ok(()); };
        for item in items.iter().take(2) {
            let Ok(task) = Task::from_value(item) else { continue };
            let gold = ansible_wisdom::yaml::emit(&Value::Seq(vec![task.to_value()]));
            // Reversed key order: keywords first, module, then name.
            let mut reversed = ansible_wisdom::yaml::Mapping::new();
            for (k, v) in task.keywords.iter() {
                reversed.insert(k.to_string(), v.clone());
            }
            reversed.insert(task.module.clone(), task.args.clone());
            if let Some(name) = &task.name {
                reversed.insert("name".to_string(), Value::Str(name.clone()));
            }
            let shuffled = ansible_wisdom::yaml::emit(&Value::Seq(vec![Value::Map(reversed)]));
            let score = ansible_aware(&gold, &shuffled);
            prop_assert!((score - 100.0).abs() < 1e-6, "reorder changed score to {score}\n{gold}\nvs\n{shuffled}");
        }
    }

    /// Degradation: deleting the last parameter of the module args lowers
    /// (never raises) the Ansible Aware score, and keeps it above zero when
    /// other parameters remain.
    #[test]
    fn aware_decreases_when_param_dropped(seed in 0u64..10_000) {
        let file = role_file(seed);
        let Ok(value) = ansible_wisdom::yaml::parse(&file) else { return Ok(()); };
        let Some(items) = value.as_seq() else { return Ok(()); };
        let Some(first) = items.first() else { return Ok(()); };
        let Ok(task) = Task::from_value(first) else { return Ok(()); };
        let Some(args) = task.args.as_map() else { return Ok(()); };
        if args.len() < 2 {
            return Ok(());
        }
        let gold_doc = ansible_wisdom::yaml::emit(&Value::Seq(vec![task.to_value()]));
        let mut damaged = task.clone();
        let last_key = args.keys().last().expect("len >= 2").to_string();
        damaged
            .args
            .as_map_mut()
            .expect("map checked")
            .remove(&last_key);
        let damaged_doc = ansible_wisdom::yaml::emit(&Value::Seq(vec![damaged.to_value()]));
        let score = ansible_aware(&gold_doc, &damaged_doc);
        prop_assert!(score < 100.0, "dropping {last_key} did not lower the score");
        prop_assert!(score > 0.0);
    }

    /// Normalization idempotence on arbitrary generated tasks.
    #[test]
    fn normalize_is_idempotent(seed in 0u64..10_000) {
        let file = role_file(seed);
        let Ok(value) = ansible_wisdom::yaml::parse(&file) else { return Ok(()); };
        if let Some(items) = value.as_seq() {
            for item in items {
                let once = normalize_task(item);
                let twice = normalize_task(&once);
                prop_assert_eq!(&once, &twice);
            }
        }
    }
}
