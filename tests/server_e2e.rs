//! Full-socket integration test of the inference service: trains a tiny
//! assistant, serves it over HTTP, and drives it like the editor plugin.

use std::sync::{Arc, OnceLock};

use ansible_wisdom::core::{Wisdom, WisdomConfig};
use ansible_wisdom::server::{
    get, parse_json, post, post_raw, request_completion, Json, ServerConfig, WisdomServer,
};

fn tiny_wisdom() -> Arc<Wisdom> {
    static WISDOM: OnceLock<Arc<Wisdom>> = OnceLock::new();
    Arc::clone(WISDOM.get_or_init(|| Arc::new(Wisdom::train(&WisdomConfig::tiny(), None))))
}

fn spawn_server_with(
    config: ServerConfig,
) -> (ansible_wisdom::server::ServerHandle, std::net::SocketAddr) {
    let server = WisdomServer::bind_with(tiny_wisdom(), "127.0.0.1:0", config).expect("bind");
    let handle = server.handle();
    let addr = handle.addr();
    std::thread::spawn(move || server.serve());
    (handle, addr)
}

fn spawn_server() -> (ansible_wisdom::server::ServerHandle, std::net::SocketAddr) {
    spawn_server_with(ServerConfig::default())
}

#[test]
fn completion_round_trip_over_http() {
    let (handle, addr) = spawn_server();

    // Health check.
    let (status, body) = post(addr, "/healthz-wrong", "{}").expect("post");
    assert_eq!(status, 404, "{body}");

    // A real completion request.
    let response = request_completion(addr, "", "install nginx").expect("completion");
    assert!(
        response.snippet.starts_with("- name: install nginx"),
        "{}",
        response.snippet
    );
    // Body and snippet agree.
    assert!(response.snippet.ends_with(&response.completion) || response.completion.is_empty());

    // With playbook context, the suggestion is nested.
    let response = request_completion(addr, "---\n- hosts: web\n  tasks:\n", "start nginx service")
        .expect("completion");
    assert!(
        response
            .snippet
            .starts_with("    - name: start nginx service"),
        "{}",
        response.snippet
    );

    // Malformed request is a 400, not a crash.
    let (status, _) = post(addr, "/v1/completions", "{\"nope\":1}").expect("post");
    assert_eq!(status, 400);
    let (status, _) = post(addr, "/v1/completions", "garbage").expect("post");
    assert_eq!(status, 400);

    // Concurrent requests are served.
    let mut threads = Vec::new();
    for i in 0..4 {
        threads.push(std::thread::spawn(move || {
            request_completion(addr, "", &format!("create user number{i}")).expect("completion")
        }));
    }
    for t in threads {
        let r = t.join().expect("thread");
        assert!(r.snippet.starts_with("- name: create user"));
    }

    handle.stop();
}

#[test]
fn concurrent_load_is_batched_and_deterministic() {
    // ≥8 parallel clients through the continuous-batching scheduler: every
    // request gets the completion the direct (unbatched) path would return.
    let (handle, addr) = spawn_server_with(ServerConfig {
        worker_threads: 12,
        max_batch_size: 4,
        queue_depth: 32,
        ..ServerConfig::default()
    });
    let wisdom = tiny_wisdom();
    let mut threads = Vec::new();
    for i in 0..10 {
        threads.push(std::thread::spawn(move || {
            let prompt = format!("install package number{i}");
            (
                prompt.clone(),
                request_completion(addr, "", &prompt).expect("completion"),
            )
        }));
    }
    for t in threads {
        let (prompt, got) = t.join().expect("client thread");
        let direct = wisdom.complete_task("", &prompt);
        assert_eq!(got.snippet, direct.snippet, "prompt {prompt:?}");
        assert_eq!(got.completion, direct.body, "prompt {prompt:?}");
    }
    handle.stop();
}

#[test]
fn stats_endpoint_reports_prefix_cache_hits() {
    // Two identical completions through the batched path share their whole
    // prompt window, so the second must hit the radix prefix cache — and
    // /v1/stats must say so.
    let (handle, addr) = spawn_server_with(ServerConfig {
        worker_threads: 4,
        max_batch_size: 4,
        queue_depth: 16,
        ..ServerConfig::default()
    });
    for _ in 0..2 {
        request_completion(addr, "", "install nginx").expect("completion");
    }
    let (status, body) = get(addr, "/v1/stats").expect("get stats");
    assert_eq!(status, 200, "{body}");
    let j = parse_json(&body).expect("stats json");
    assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    assert_eq!(j.get("max_batch_size").and_then(Json::as_f64), Some(4.0));
    let pc = j.get("prefix_cache").expect("prefix_cache object");
    assert_eq!(pc.get("enabled").and_then(Json::as_bool), Some(true));
    let hits = pc.get("hits").and_then(Json::as_f64).expect("hits");
    assert!(
        hits >= 1.0,
        "repeat prompt must hit the prefix cache: {body}"
    );
    let bytes = pc.get("bytes").and_then(Json::as_f64).expect("bytes");
    let budget = pc
        .get("budget_bytes")
        .and_then(Json::as_f64)
        .expect("budget");
    assert!(bytes <= budget, "cache over budget: {body}");
    handle.stop();
}

#[test]
fn stats_endpoint_reports_speculation_config() {
    use ansible_wisdom::core::SpeculativeConfig;

    // Speculation off (the default): /v1/stats still carries the object.
    let (handle, addr) = spawn_server();
    let (status, body) = get(addr, "/v1/stats").expect("get stats");
    assert_eq!(status, 200, "{body}");
    let j = parse_json(&body).expect("stats json");
    let spec = j.get("speculative").expect("speculative object");
    assert_eq!(spec.get("enabled").and_then(Json::as_bool), Some(false));
    assert_eq!(spec.get("k").and_then(Json::as_f64), Some(0.0));
    assert_eq!(spec.get("draft").and_then(Json::as_str), Some("off"));
    handle.stop();

    // Speculation on: config echoed back, and completions through the
    // speculating scheduler stay identical to the direct path.
    let (handle, addr) = spawn_server_with(ServerConfig {
        worker_threads: 4,
        max_batch_size: 4,
        queue_depth: 16,
        speculative: SpeculativeConfig::ngram(4),
        ..ServerConfig::default()
    });
    let wisdom = tiny_wisdom();
    for prompt in ["install nginx", "install nginx", "start nginx service"] {
        let got = request_completion(addr, "", prompt).expect("completion");
        assert_eq!(got.snippet, wisdom.complete_task("", prompt).snippet);
    }
    let (status, body) = get(addr, "/v1/stats").expect("get stats");
    assert_eq!(status, 200, "{body}");
    let j = parse_json(&body).expect("stats json");
    let spec = j.get("speculative").expect("speculative object");
    assert_eq!(spec.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(spec.get("k").and_then(Json::as_f64), Some(4.0));
    assert_eq!(spec.get("draft").and_then(Json::as_str), Some("ngram"));
    // The metric family shares the scrape with the rest of the stack.
    let (status, metrics) = get(addr, "/metrics").expect("get metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("# TYPE wisdom_speculative_verify_passes_total counter"),
        "{metrics}"
    );
    handle.stop();
}

#[test]
fn int8_server_reports_precision_and_stays_deterministic() {
    use ansible_wisdom::core::Precision;

    let (handle, addr) = spawn_server_with(ServerConfig {
        worker_threads: 4,
        max_batch_size: 4,
        queue_depth: 16,
        precision: Precision::Int8,
        ..ServerConfig::default()
    });

    // Deterministic-output lane: repeated and concurrent completions of the
    // same prompt agree bit-for-bit (batched int8 decode is deterministic at
    // any batch composition, exactly like f32).
    let first = request_completion(addr, "", "install nginx").expect("completion");
    let again = request_completion(addr, "", "install nginx").expect("completion");
    assert_eq!(first.snippet, again.snippet);
    let mut threads = Vec::new();
    for _ in 0..4 {
        threads.push(std::thread::spawn(move || {
            request_completion(addr, "", "install nginx").expect("completion")
        }));
    }
    for t in threads {
        assert_eq!(t.join().expect("thread").snippet, first.snippet);
    }

    // /v1/stats echoes the precision and the quant gauges/counters.
    let (status, body) = get(addr, "/v1/stats").expect("get stats");
    assert_eq!(status, 200, "{body}");
    let j = parse_json(&body).expect("stats json");
    assert_eq!(j.get("precision").and_then(Json::as_str), Some("int8"));
    let quant = j.get("quant").expect("quant object");
    let field = |k: &str| quant.get(k).and_then(Json::as_f64).expect("quant field");
    assert!(field("weight_bytes") > 0.0, "{body}");
    assert!(field("weight_bytes_saved") > 0.0, "{body}");
    assert!(field("matmuls_int8") > 0.0, "{body}");
    assert_eq!(field("matmuls_f32"), 0.0, "{body}");

    // The wisdom_quant_* family shares the /metrics scrape.
    let (status, metrics) = get(addr, "/metrics").expect("get metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("# TYPE wisdom_quant_weight_bytes gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE wisdom_quant_matmuls_int8_total counter"),
        "{metrics}"
    );
    handle.stop();

    // The default server still reports f32.
    let (handle, addr) = spawn_server();
    let (_, body) = get(addr, "/v1/stats").expect("get stats");
    let j = parse_json(&body).expect("stats json");
    assert_eq!(j.get("precision").and_then(Json::as_str), Some("f32"));
    handle.stop();
}

#[test]
fn queue_overflow_returns_503_with_retry_after() {
    let (handle, addr) = spawn_server_with(ServerConfig {
        worker_threads: 8,
        max_batch_size: 2,
        queue_depth: 2,
        retry_after_secs: 3,
        ..ServerConfig::default()
    });
    // Freeze admission: submissions pile up in the bounded queue, so
    // exactly `queue_depth` of the clients below park and the rest are
    // shed with 503 — no timing dependence.
    handle.set_admission_paused(true);

    let (tx, rx) = std::sync::mpsc::channel();
    let mut threads = Vec::new();
    for _ in 0..6 {
        let tx = tx.clone();
        threads.push(std::thread::spawn(move || {
            let result =
                post_raw(addr, "/v1/completions", r#"{"prompt":"install nginx"}"#).expect("post");
            tx.send(result.0).expect("send status");
            result
        }));
    }
    drop(tx);
    // 4 of 6 must be rejected immediately (2 fit in the queue). Unpause
    // only once all rejections are in, then the parked 2 decode normally.
    let mut rejected = 0;
    while rejected < 4 {
        let status = rx.recv().expect("a client finished");
        assert_eq!(status, 503, "only overflowing clients finish while paused");
        rejected += 1;
    }
    handle.set_admission_paused(false);

    let mut ok = 0;
    let mut shed = 0;
    for t in threads {
        let (status, headers, body) = t.join().expect("client thread");
        match status {
            200 => {
                assert!(body.contains("completion"), "{body}");
                ok += 1;
            }
            503 => {
                let retry = headers
                    .iter()
                    .find(|(k, _)| k == "retry-after")
                    .map(|(_, v)| v.as_str());
                assert_eq!(retry, Some("3"), "503 must advertise Retry-After");
                shed += 1;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!((ok, shed), (2, 4));
    handle.stop();
}

#[test]
fn health_and_readiness_endpoints() {
    let (handle, addr) = spawn_server();

    // Liveness: always 200, never touches the model or a lock.
    let (status, body) = get(addr, "/healthz").expect("get healthz");
    assert_eq!((status, body.as_str()), (200, "ok"));

    // Readiness: 200 once the decode worker thread is up (it starts at
    // bind time, so this converges quickly).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let (status, body) = get(addr, "/readyz").expect("get readyz");
        if status == 200 {
            assert_eq!(body, "ready");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "decode worker never became ready: {status} {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Forced-unready flips readiness to 503 but leaves liveness at 200.
    handle.set_ready(false);
    let (status, _) = get(addr, "/readyz").expect("get readyz");
    assert_eq!(status, 503);
    let (status, _) = get(addr, "/healthz").expect("get healthz");
    assert_eq!(status, 200);
    handle.set_ready(true);
    let (status, _) = get(addr, "/readyz").expect("get readyz");
    assert_eq!(status, 200);

    handle.stop();
}

#[test]
fn metrics_scrape_mid_load_counts_requests() {
    use ansible_wisdom::telemetry::sample_value;

    let (handle, addr) = spawn_server_with(ServerConfig {
        worker_threads: 8,
        max_batch_size: 4,
        queue_depth: 32,
        ..ServerConfig::default()
    });
    let scrape = || {
        let (status, body) = get(addr, "/metrics").expect("get metrics");
        assert_eq!(status, 200, "{body}");
        body
    };
    // Counters we hold monotonic across every scrape below.
    const MONOTONIC: &[&str] = &[
        "wisdom_http_requests_total",
        "wisdom_requests_admitted_total",
        "wisdom_requests_completed_total",
        "wisdom_scheduler_wakeups_total",
        "wisdom_request_duration_seconds_count{route=\"/v1/completions\"}",
    ];
    let counters = |text: &str| -> Vec<f64> {
        MONOTONIC
            .iter()
            .map(|series| sample_value(text, series).unwrap_or_else(|| panic!("missing {series}")))
            .collect()
    };

    let first = scrape();
    // The whole serving stack shares one exposition.
    for family in [
        "# TYPE wisdom_request_duration_seconds histogram",
        "# TYPE wisdom_ttft_seconds histogram",
        "# TYPE wisdom_queue_wait_seconds histogram",
        "# TYPE wisdom_batch_occupancy gauge",
        "# TYPE wisdom_prefix_cache_hits_total counter",
    ] {
        assert!(first.contains(family), "missing {family:?} in:\n{first}");
    }
    let baseline = counters(&first);

    for i in 0..3 {
        request_completion(addr, "", &format!("install package number{i}")).expect("completion");
    }
    let settled = scrape();
    let after_three = counters(&settled);
    for (series, (before, after)) in MONOTONIC.iter().zip(baseline.iter().zip(&after_three)) {
        assert!(
            after >= before,
            "{series} went backwards: {before} -> {after}"
        );
    }
    // Histogram counts equal completed requests, per route and end to end.
    assert_eq!(
        sample_value(
            &settled,
            "wisdom_request_duration_seconds_count{route=\"/v1/completions\"}"
        ),
        Some(3.0),
        "{settled}"
    );
    assert_eq!(
        sample_value(&settled, "wisdom_requests_completed_total"),
        Some(3.0)
    );
    assert_eq!(
        sample_value(&settled, "wisdom_ttft_seconds_count"),
        Some(3.0)
    );

    // Mid-load: freeze admission so two requests sit in the decode queue,
    // then scrape while they are provably in flight.
    handle.set_admission_paused(true);
    let mut clients = Vec::new();
    for i in 0..2 {
        clients.push(std::thread::spawn(move || {
            request_completion(addr, "", &format!("create user midload{i}")).expect("completion")
        }));
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mid = loop {
        let text = scrape();
        if sample_value(&text, "wisdom_queue_depth") == Some(2.0) {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "queued requests never showed up in wisdom_queue_depth:\n{text}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    let mid_counters = counters(&mid);
    for (series, (before, after)) in MONOTONIC.iter().zip(after_three.iter().zip(&mid_counters)) {
        assert!(
            after >= before,
            "{series} went backwards: {before} -> {after}"
        );
    }
    // Paused admission: both requests are queued, none admitted yet.
    assert_eq!(
        sample_value(&mid, "wisdom_requests_admitted_total"),
        Some(3.0),
        "{mid}"
    );

    handle.set_admission_paused(false);
    for c in clients {
        c.join().expect("client thread");
    }
    let fin = scrape();
    let final_counters = counters(&fin);
    for (series, (before, after)) in MONOTONIC
        .iter()
        .zip(mid_counters.iter().zip(&final_counters))
    {
        assert!(
            after >= before,
            "{series} went backwards: {before} -> {after}"
        );
    }
    assert_eq!(
        sample_value(&fin, "wisdom_requests_completed_total"),
        Some(5.0),
        "{fin}"
    );
    assert_eq!(
        sample_value(
            &fin,
            "wisdom_request_duration_seconds_count{route=\"/v1/completions\"}"
        ),
        Some(5.0)
    );
    assert_eq!(sample_value(&fin, "wisdom_ttft_seconds_count"), Some(5.0));
    assert_eq!(sample_value(&fin, "wisdom_queue_depth"), Some(0.0));

    handle.stop();
}

#[test]
fn keep_alive_connection_reuses_one_socket_for_sequential_requests() {
    use ansible_wisdom::server::HttpConnection;

    let (handle, addr) = spawn_server();
    let mut conn = HttpConnection::connect(addr).expect("connect");

    let (status, headers, body) = conn
        .post("/v1/completions", r#"{"prompt":"install nginx"}"#)
        .expect("first request");
    assert_eq!(status, 200, "{body}");
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "connection" && v == "keep-alive"),
        "server must advertise keep-alive back: {headers:?}"
    );

    let (status, _, body) = conn
        .post("/v1/completions", r#"{"prompt":"start nginx service"}"#)
        .expect("second request");
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = conn.get("/v1/stats").expect("third request");
    assert_eq!(status, 200, "{body}");

    // All three rode the socket opened by `connect` — the server never
    // closed it between requests.
    assert_eq!(conn.connects(), 1, "requests must reuse one TCP socket");
    handle.stop();
}

#[test]
fn keep_alive_connections_are_bounded_per_socket() {
    use ansible_wisdom::server::HttpConnection;

    let (handle, addr) = spawn_server_with(ServerConfig {
        keepalive_max_requests: 2,
        ..ServerConfig::default()
    });
    let mut conn = HttpConnection::connect(addr).expect("connect");
    for _ in 0..4 {
        let (status, _, body) = conn.get("/healthz").expect("request");
        assert_eq!(status, 200, "{body}");
    }
    // 2 requests per socket → 4 requests need 2 sockets; the client
    // reconnected transparently when the server said `connection: close`.
    assert_eq!(conn.connects(), 2);
    handle.stop();
}

#[test]
fn streaming_completion_is_bit_identical_to_the_plain_response() {
    use ansible_wisdom::server::post_sse;
    use ansible_wisdom::telemetry::sample_value;

    let (handle, addr) = spawn_server();
    let body = r#"{"prompt":"install nginx"}"#;
    let (status, _, plain) = post_raw(addr, "/v1/completions", body).expect("plain");
    assert_eq!(status, 200, "{plain}");

    let streamed = r#"{"prompt":"install nginx","stream":true}"#;
    let (status, events) = post_sse(addr, "/v1/completions", streamed).expect("stream");
    assert_eq!(status, 200);
    assert!(
        events.len() >= 2,
        "want at least one token event plus the final object: {events:?}"
    );
    // Every event before the last is a single-token object.
    for event in &events[..events.len() - 1] {
        let token = parse_json(event).expect("token event json");
        assert!(
            token.get("token").and_then(Json::as_str).is_some(),
            "bad token event: {event}"
        );
    }
    // The final event is byte-for-byte the non-streaming response body.
    assert_eq!(events.last().map(String::as_str), Some(plain.as_str()));

    // Stream latency histograms saw the stream.
    let (_, metrics) = get(addr, "/metrics").expect("metrics");
    let ttft = sample_value(&metrics, "wisdom_stream_ttft_seconds_count").expect("ttft series");
    assert!(ttft >= 1.0, "{metrics}");
    assert!(
        sample_value(&metrics, "wisdom_stream_token_seconds_count").is_some(),
        "{metrics}"
    );
    handle.stop();
}

#[test]
fn streaming_rejects_bad_payloads_without_starting_a_stream() {
    use ansible_wisdom::server::post_sse;

    let (handle, addr) = spawn_server();
    let (status, events) =
        post_sse(addr, "/v1/completions", r#"{"stream":true}"#).expect("missing prompt");
    assert_eq!(status, 400);
    assert_eq!(events.len(), 1, "plain error body, no SSE events");
    handle.stop();
}

#[test]
fn multi_replica_server_is_deterministic_and_reports_per_replica_stats() {
    let (handle, addr) = spawn_server_with(ServerConfig {
        worker_threads: 6,
        max_batch_size: 2,
        queue_depth: 16,
        replicas: 2,
        ..ServerConfig::default()
    });
    let wisdom = tiny_wisdom();
    // Enough distinct prompts that the rendezvous fallback exercises both
    // replicas; every completion must match the direct path bit-for-bit.
    let mut threads = Vec::new();
    for i in 0..6 {
        threads.push(std::thread::spawn(move || {
            let prompt = format!("install package number{i}");
            (
                prompt.clone(),
                request_completion(addr, "", &prompt).expect("completion"),
            )
        }));
    }
    for t in threads {
        let (prompt, got) = t.join().expect("client thread");
        assert_eq!(
            got.snippet,
            wisdom.complete_task("", &prompt).snippet,
            "prompt {prompt:?}"
        );
    }

    let (status, body) = get(addr, "/v1/stats").expect("stats");
    assert_eq!(status, 200, "{body}");
    let j = parse_json(&body).expect("stats json");
    assert_eq!(j.get("replica_count").and_then(Json::as_f64), Some(2.0));
    assert!(
        matches!(j.get("replicas"), Some(Json::Arr(items)) if items.len() == 2),
        "{body}"
    );
    // The pool aggregate keeps the legacy shape.
    assert_eq!(j.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    let pc = j.get("prefix_cache").expect("prefix_cache object");
    assert_eq!(pc.get("enabled").and_then(Json::as_bool), Some(true));

    // Per-replica series are labeled; router counters carry the policy.
    let (status, metrics) = get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("replica=\"0\""), "{metrics}");
    assert!(metrics.contains("replica=\"1\""), "{metrics}");
    assert!(
        metrics.contains("wisdom_router_requests_total{policy=\"prefix_affinity\"}"),
        "{metrics}"
    );
    handle.stop();
}

#[test]
fn oversized_request_body_is_rejected_with_413() {
    use std::io::{Read, Write};
    let (handle, addr) = spawn_server();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    // Claim a body far over the 1 MiB cap; the server must answer 413
    // without waiting for the bytes.
    write!(
        stream,
        "POST /v1/completions HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n"
    )
    .expect("write");
    stream.flush().expect("flush");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 413"),
        "expected 413, got: {response}"
    );
    handle.stop();
}

#[test]
fn constrained_completion_round_trip_and_stats_echo() {
    use ansible_wisdom::core::Constraint;

    // The server-wide default constraint is echoed by /v1/stats and applied
    // to requests that don't name one.
    let (handle, addr) = spawn_server_with(ServerConfig {
        constraint: Constraint::Ansible,
        ..ServerConfig::default()
    });
    let (status, body) = post(addr, "/v1/completions", r#"{"prompt":"install nginx"}"#)
        .expect("default-constrained completion");
    assert_eq!(status, 200, "{body}");

    // An explicit per-request constraint is accepted and deterministic.
    let request = r#"{"prompt":"install nginx","constraint":"ansible"}"#;
    let (status, first) = post(addr, "/v1/completions", request).expect("constrained");
    assert_eq!(status, 200, "{first}");
    let (_, second) = post(addr, "/v1/completions", request).expect("constrained again");
    assert_eq!(first, second, "constrained decode must be deterministic");

    // Opting out per request is accepted too.
    let (status, body) = post(
        addr,
        "/v1/completions",
        r#"{"prompt":"install nginx","constraint":"none"}"#,
    )
    .expect("unconstrained override");
    assert_eq!(status, 200, "{body}");

    let (status, stats) = get(addr, "/v1/stats").expect("stats");
    assert_eq!(status, 200, "{stats}");
    let j = parse_json(&stats).expect("stats json");
    let grammar = j.get("grammar").expect("grammar object");
    assert_eq!(
        grammar.get("constraint").and_then(Json::as_str),
        Some("ansible"),
        "{stats}"
    );
    assert!(grammar
        .get("masked_tokens")
        .and_then(Json::as_f64)
        .is_some());
    assert!(grammar
        .get("forced_tokens")
        .and_then(Json::as_f64)
        .is_some());
    handle.stop();
}

#[test]
fn invalid_constraint_is_rejected_with_400() {
    let (handle, addr) = spawn_server();
    let (status, body) = post(
        addr,
        "/v1/completions",
        r#"{"prompt":"install nginx","constraint":"json"}"#,
    )
    .expect("post");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("constraint"), "{body}");
    let (status, body) = post(
        addr,
        "/v1/completions",
        r#"{"prompt":"install nginx","constraint":5}"#,
    )
    .expect("post");
    assert_eq!(status, 400, "{body}");

    // The default config leaves decodes unconstrained, and /v1/stats says so.
    let (_, stats) = get(addr, "/v1/stats").expect("stats");
    let j = parse_json(&stats).expect("stats json");
    assert_eq!(
        j.get("grammar")
            .and_then(|g| g.get("constraint"))
            .and_then(Json::as_str),
        Some("none"),
        "{stats}"
    );
    handle.stop();
}

#[test]
fn streaming_constrained_completion_matches_the_plain_constrained_response() {
    use ansible_wisdom::server::post_sse;

    let (handle, addr) = spawn_server();
    let body = r#"{"prompt":"install nginx","constraint":"ansible"}"#;
    let (status, _, plain) = post_raw(addr, "/v1/completions", body).expect("plain");
    assert_eq!(status, 200, "{plain}");

    let streamed = r#"{"prompt":"install nginx","constraint":"ansible","stream":true}"#;
    let (status, events) = post_sse(addr, "/v1/completions", streamed).expect("stream");
    assert_eq!(status, 200);
    assert!(
        events.len() >= 2,
        "token events plus final object: {events:?}"
    );
    // The final event is byte-for-byte the non-streaming constrained body.
    assert_eq!(events.last().map(String::as_str), Some(plain.as_str()));
    handle.stop();
}
