//! Full-socket integration test of the inference service: trains a tiny
//! assistant, serves it over HTTP, and drives it like the editor plugin.

use std::sync::Arc;

use ansible_wisdom::core::{Wisdom, WisdomConfig};
use ansible_wisdom::server::{post, request_completion, WisdomServer};

fn spawn_server() -> (ansible_wisdom::server::ServerHandle, std::net::SocketAddr) {
    let wisdom = Arc::new(Wisdom::train(&WisdomConfig::tiny(), None));
    let server = WisdomServer::bind(wisdom, "127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let addr = handle.addr();
    std::thread::spawn(move || server.serve());
    (handle, addr)
}

#[test]
fn completion_round_trip_over_http() {
    let (handle, addr) = spawn_server();

    // Health check.
    let (status, body) = post(addr, "/healthz-wrong", "{}").expect("post");
    assert_eq!(status, 404, "{body}");

    // A real completion request.
    let response = request_completion(addr, "", "install nginx").expect("completion");
    assert!(
        response.snippet.starts_with("- name: install nginx"),
        "{}",
        response.snippet
    );
    // Body and snippet agree.
    assert!(response.snippet.ends_with(&response.completion) || response.completion.is_empty());

    // With playbook context, the suggestion is nested.
    let response = request_completion(addr, "---\n- hosts: web\n  tasks:\n", "start nginx service")
        .expect("completion");
    assert!(
        response
            .snippet
            .starts_with("    - name: start nginx service"),
        "{}",
        response.snippet
    );

    // Malformed request is a 400, not a crash.
    let (status, _) = post(addr, "/v1/completions", "{\"nope\":1}").expect("post");
    assert_eq!(status, 400);
    let (status, _) = post(addr, "/v1/completions", "garbage").expect("post");
    assert_eq!(status, 400);

    // Concurrent requests are served.
    let mut threads = Vec::new();
    for i in 0..4 {
        threads.push(std::thread::spawn(move || {
            request_completion(addr, "", &format!("create user number{i}")).expect("completion")
        }));
    }
    for t in threads {
        let r = t.join().expect("thread");
        assert!(r.snippet.starts_with("- name: create user"));
    }

    handle.stop();
}
