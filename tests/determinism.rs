//! Cross-crate determinism guarantees: the same seed must reproduce the
//! same corpus, samples, tokenizer, training trajectory and generations —
//! the property that makes every table in EXPERIMENTS.md regenerable.

use ansible_wisdom::corpus::{Corpus, SplitSamples};
use ansible_wisdom::eval::Profile;
use ansible_wisdom::model::{pretrain, ModelConfig, PretrainConfig, TransformerLm};
use ansible_wisdom::prng::Prng;
use ansible_wisdom::tokenizer::BpeTokenizer;

#[test]
fn corpus_and_samples_are_seed_deterministic() {
    let spec = Profile::test().corpus_spec();
    let a = Corpus::build(&spec);
    let b = Corpus::build(&spec);
    assert_eq!(a.galaxy, b.galaxy);
    assert_eq!(a.pile, b.pile);
    assert_eq!(a.bigquery, b.bigquery);
    let sa = SplitSamples::build(&a.galaxy, 42);
    let sb = SplitSamples::build(&b.galaxy, 42);
    assert_eq!(sa.train, sb.train);
    assert_eq!(sa.test, sb.test);
    // Different seed reshuffles the split.
    let sc = SplitSamples::build(&a.galaxy, 43);
    assert_ne!(
        sa.train.first().map(|s| s.nl.clone()),
        sc.train.first().map(|s| s.nl.clone()),
    );
}

#[test]
fn tokenizer_training_is_deterministic() {
    let spec = Profile::test().corpus_spec();
    let corpus = Corpus::build(&spec);
    let texts: Vec<&str> = corpus.galaxy.iter().map(String::as_str).collect();
    let a = BpeTokenizer::train(texts.iter().copied(), 400);
    let b = BpeTokenizer::train(texts.iter().copied(), 400);
    assert_eq!(a.to_text(), b.to_text());
}

#[test]
fn training_trajectory_is_deterministic() {
    let cfg = ModelConfig {
        vocab_size: 50,
        d_model: 16,
        n_layers: 1,
        n_heads: 2,
        context_window: 16,
    };
    let stream: Vec<u32> = (0..400).map(|i| (i % 23) as u32).collect();
    let run = || {
        let mut rng = Prng::seed_from_u64(7);
        let mut model = TransformerLm::new(cfg, &mut rng);
        let losses = pretrain(
            &mut model,
            &stream,
            &PretrainConfig {
                epochs: 2,
                batch_size: 4,
                ..Default::default()
            },
            None,
        );
        (losses, ansible_wisdom::model::save_checkpoint(&model))
    };
    let (la, ca) = run();
    let (lb, cb) = run();
    assert_eq!(la, lb, "loss curves must match exactly");
    assert_eq!(ca, cb, "final weights must match bit-for-bit");
}
