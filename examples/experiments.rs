//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release --example experiments -- all quick
//! cargo run --release --example experiments -- table3 test
//! cargo run --release --example experiments -- throughput
//! ```
//!
//! Targets: `table1`, `table2`, `table3`, `table4`, `table5`, `tables45`,
//! `throughput`, `batching`, `prefix`, `telemetry`, `speculative`, `quant`,
//! `grammar`, `serving`, `curation`, `all`.
//! Profiles: `test` (seconds), `fast`, `quick` (default), `paper`.
//!
//! The `quant`, `grammar`, `serving`, and `curation` targets additionally
//! write their measurements to `BENCH_quant.json` / `BENCH_grammar.json` /
//! `BENCH_serving.json` / `BENCH_curation.json` in the working directory.

use std::time::Instant;

use ansible_wisdom::corpus::{Corpus, CorpusStats};
use ansible_wisdom::eval::{
    run_curation, run_decode_batching, run_decoding_ablation, run_grammar, run_prefix_cache,
    run_quant, run_serving, run_speculative, run_table3, run_table4, run_table5,
    run_telemetry_overhead, run_throughput, tables, CurationResult, GrammarResult, Profile,
    Progress, QuantResult, ServingResult, Zoo,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or("all");
    let profile_name = args.get(1).map(String::as_str).unwrap_or("quick");
    let Some(profile) = Profile::by_name(profile_name) else {
        eprintln!("unknown profile {profile_name:?}; use test|quick|paper");
        std::process::exit(2);
    };
    println!("# Ansible Wisdom reproduction — target={target} profile={profile_name}");
    println!(
        "# seed={} corpus_scale=1/{} ctx_scale=1/{}\n",
        profile.seed, profile.corpus_scale, profile.ctx_scale
    );

    let started = Instant::now();
    match target {
        "table1" => table1(&profile),
        "tables45" => {
            let mut zoo = build_zoo(profile);
            print!("{}", tables::table4_text(&run_table4(&mut zoo, progress())));
            println!();
            print!("{}", tables::table5_text(&run_table5(&mut zoo, progress())));
        }
        "decoding" => {
            let mut zoo = build_zoo(profile);
            let rows = run_decoding_ablation(&mut zoo, progress());
            println!("Decoding-strategy ablation (extension; paper §5.2 expectation)");
            for r in &rows {
                println!("  {:<28} {}", r.model, r.metrics);
            }
        }
        "table2" => print!("{}", tables::table2_text()),
        "table3" | "table4" | "table5" => {
            let mut zoo = build_zoo(profile);
            match target {
                "table3" => print!("{}", tables::table3_text(&run_table3(&mut zoo, progress()))),
                "table4" => print!("{}", tables::table4_text(&run_table4(&mut zoo, progress()))),
                _ => print!("{}", tables::table5_text(&run_table5(&mut zoo, progress()))),
            }
        }
        "quant" => {
            let mut zoo = build_zoo(profile);
            let r = run_quant(&mut zoo, 96, progress());
            print!("{}", tables::quant_text(&r));
            write_bench_quant(&r, profile_name, 96);
        }
        "grammar" => {
            let mut zoo = build_zoo(profile);
            let r = run_grammar(&mut zoo, progress());
            print!("{}", tables::grammar_text(&r));
            write_bench_grammar(&r, profile_name);
        }
        "serving" => {
            let r = run_serving(&profile, 8, 10);
            print!("{}", tables::serving_text(&r));
            write_bench_serving(&r, profile_name);
        }
        "curation" => {
            let mut zoo = build_zoo(profile);
            let r = run_curation(&mut zoo, &[1, 2, 4], progress());
            print!("{}", tables::curation_text(&r));
            write_bench_curation(&r, profile_name);
        }
        "throughput" => throughput(&profile),
        "batching" => batching(&profile),
        "prefix" => prefix(&profile),
        "telemetry" => telemetry(&profile),
        "speculative" => speculative(&profile),
        "all" => {
            table1(&profile);
            println!();
            print!("{}", tables::table2_text());
            println!();
            let mut zoo = build_zoo(profile);
            print!("{}", tables::table3_text(&run_table3(&mut zoo, progress())));
            println!();
            print!("{}", tables::table4_text(&run_table4(&mut zoo, progress())));
            println!();
            print!("{}", tables::table5_text(&run_table5(&mut zoo, progress())));
            println!();
            throughput(&profile);
        }
        other => {
            eprintln!("unknown target {other:?}");
            std::process::exit(2);
        }
    }
    println!("\n# done in {:.1}s", started.elapsed().as_secs_f64());
}

fn build_zoo(profile: Profile) -> Zoo {
    eprintln!("[building corpus, splits, tokenizer…]");
    let zoo = Zoo::build(profile);
    eprintln!(
        "[corpus ready: {} galaxy files, {} train / {} valid / {} test samples, vocab {}]",
        zoo.corpus.galaxy.len(),
        zoo.split.train.len(),
        zoo.split.valid.len(),
        zoo.split.test.len(),
        zoo.tokenizer.vocab_size()
    );
    zoo
}

type ProgressCb = dyn FnMut(&str, usize, usize);

fn progress() -> Progress<'static> {
    // Leaking one closure per process keeps the API simple for an example.
    let cb: Box<ProgressCb> = Box::new(|phase, _s, _t| {
        eprintln!("[{phase}]");
    });
    Some(Box::leak(cb))
}

fn table1(profile: &Profile) {
    let corpus = Corpus::build(&profile.corpus_spec());
    print!("{}", corpus.table1());
    println!(
        "(counts are the paper's Table 1 divided by {}; dedup is exact-match)",
        profile.corpus_scale
    );
    println!();
    print!("{}", CorpusStats::of(&corpus).report());
}

fn throughput(profile: &Profile) {
    let r = run_throughput(profile, 96);
    print!("{}", tables::throughput_text(&r));
}

fn batching(profile: &Profile) {
    let points = run_decode_batching(profile, 64, &[1, 2, 4, 8]);
    print!("{}", tables::decode_batching_text(&points));
}

fn prefix(profile: &Profile) {
    let points = run_prefix_cache(profile, &[0.25, 0.5, 0.75, 0.9375]);
    print!("{}", tables::prefix_cache_text(&points));
}

fn telemetry(profile: &Profile) {
    let r = run_telemetry_overhead(profile, 8, 64);
    print!("{}", tables::telemetry_text(&r));
}

fn speculative(profile: &Profile) {
    let points = run_speculative(profile, 64, &[0, 2, 4, 8]);
    print!("{}", tables::speculative_text(&points));
}

/// Writes the quantization measurements to `BENCH_quant.json` so the repo
/// records the numbers the README/EXPERIMENTS tables quote.
fn write_bench_quant(r: &QuantResult, profile_name: &str, tokens: usize) {
    let mut speed = String::new();
    for (i, s) in r.speed.iter().enumerate() {
        if i > 0 {
            speed.push_str(",\n");
        }
        speed.push_str(&format!(
            "    {{\"size\": \"{}\", \"f32_tps\": {:.1}, \"int8_tps\": {:.1}, \
             \"speedup\": {:.3}, \"f32_weight_bytes\": {}, \"int8_weight_bytes\": {}, \
             \"compression\": {:.3}}}",
            s.label,
            s.f32_tps,
            s.int8_tps,
            s.speedup(),
            s.f32_weight_bytes,
            s.int8_weight_bytes,
            s.compression()
        ));
    }
    let metrics = |m: &ansible_wisdom::metrics::MetricsSummary| {
        format!(
            "{{\"schema_correct\": {:.2}, \"exact_match\": {:.2}, \"bleu\": {:.2}, \
             \"ansible_aware\": {:.2}, \"samples\": {}}}",
            m.schema_correct, m.exact_match, m.bleu, m.ansible_aware, m.count
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"quantized int8 inference\",\n  \"profile\": \"{}\",\n  \
         \"decode_tokens\": {},\n  \"speed\": [\n{}\n  ],\n  \
         \"quality\": {{\n    \"harness\": \"Table 5 (fine-tuned CodeGen-Multi, ctx 1024)\",\n    \
         \"f32\": {},\n    \"int8\": {},\n    \
         \"deltas\": {{\"schema_correct\": {:.2}, \"exact_match\": {:.2}, \"bleu\": {:.2}, \
         \"ansible_aware\": {:.2}}}\n  }}\n}}\n",
        profile_name,
        tokens,
        speed,
        metrics(&r.f32_metrics),
        metrics(&r.int8_metrics),
        r.schema_delta(),
        r.exact_delta(),
        r.bleu_delta(),
        r.aware_delta()
    );
    match std::fs::write("BENCH_quant.json", &json) {
        Ok(()) => eprintln!("[wrote BENCH_quant.json]"),
        Err(e) => eprintln!("[failed to write BENCH_quant.json: {e}]"),
    }
}

/// Writes the grammar-constrained decoding measurements to
/// `BENCH_grammar.json` so the repo records the per-type Schema Correct
/// deltas and the parse/lint audit the README quotes.
fn write_bench_grammar(r: &GrammarResult, profile_name: &str) {
    let metrics = |m: &ansible_wisdom::metrics::MetricsSummary| {
        format!(
            "{{\"schema_correct\": {:.2}, \"exact_match\": {:.2}, \"bleu\": {:.2}, \
             \"ansible_aware\": {:.2}, \"samples\": {}}}",
            m.schema_correct, m.exact_match, m.bleu, m.ansible_aware, m.count
        )
    };
    let mut rows = String::new();
    for (i, row) in r.rows.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"type\": \"{}\", \"count\": {}, \"unconstrained\": {}, \
             \"constrained\": {}, \"deltas\": {{\"schema_correct\": {:.2}, \
             \"ansible_aware\": {:.2}, \"bleu\": {:.2}}}}}",
            row.label,
            row.count,
            metrics(&row.unconstrained),
            metrics(&row.constrained),
            row.schema_delta(),
            row.aware_delta(),
            row.bleu_delta()
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"grammar-constrained decoding\",\n  \"profile\": \"{}\",\n  \
         \"constraint\": \"{}\",\n  \
         \"harness\": \"Table 5 (fine-tuned CodeGen-Multi, ctx 1024, greedy)\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"audit\": {{\"completions\": {}, \"parsed\": {}, \"lint_clean\": {}}}\n}}\n",
        profile_name, r.constraint, rows, r.completions, r.parsed, r.lint_clean
    );
    match std::fs::write("BENCH_grammar.json", &json) {
        Ok(()) => eprintln!("[wrote BENCH_grammar.json]"),
        Err(e) => eprintln!("[failed to write BENCH_grammar.json: {e}]"),
    }
}

/// Writes the serving-replay measurements to `BENCH_serving.json` so the
/// repo records the multi-replica SLO numbers the README quotes.
fn write_bench_serving(r: &ServingResult, profile_name: &str) {
    let mut arms = String::new();
    for (i, a) in r.arms.iter().enumerate() {
        if i > 0 {
            arms.push_str(",\n");
        }
        arms.push_str(&format!(
            "    {{\"arm\": \"{}\", \"replicas\": {}, \"policy\": \"{}\", \
             \"aggregate_tps\": {:.1}, \"ttft_p50_ms\": {:.2}, \"ttft_p99_ms\": {:.2}, \
             \"warm_ttft_p50_ms\": {:.2}, \"token_p50_ms\": {:.3}, \"requests\": {}, \
             \"shed_retries\": {}, \"cache_hit_rate\": {:.3}, \"cache_hit_tokens\": {}}}",
            a.label,
            a.replicas,
            a.policy,
            a.aggregate_tps,
            a.ttft_p50_ms,
            a.ttft_p99_ms,
            a.warm_ttft_p50_ms,
            a.token_p50_ms,
            a.requests,
            a.shed_retries,
            a.cache_hit_rate,
            a.cache_hit_tokens
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"multi-replica serving replay (2.7B-class, streamed greedy)\",\n  \
         \"profile\": \"{}\",\n  \
         \"workload\": {{\"sessions\": {}, \"resends\": {}, \"prefix_tokens\": {}, \
         \"growth_tokens\": {}, \"max_new_tokens\": {}, \
         \"replica_prefix_cache_bytes\": {}}},\n  \
         \"note\": \"single-core host: scale-out wins come from aggregate prefix-cache \
         capacity under affinity routing, not CPU parallelism\",\n  \
         \"arms\": [\n{}\n  ],\n  \
         \"scaleout_tps_2x_vs_1x\": {:.3},\n  \
         \"warm_ttft_p50_affinity_gain_vs_round_robin\": {:.3}\n}}\n",
        profile_name,
        r.sessions,
        r.resends,
        r.prefix_tokens,
        r.growth_tokens,
        r.max_new,
        r.replica_budget_bytes,
        arms,
        r.scaleout(),
        r.affinity_warm_ttft_gain()
    );
    match std::fs::write("BENCH_serving.json", &json) {
        Ok(()) => eprintln!("[wrote BENCH_serving.json]"),
        Err(e) => eprintln!("[failed to write BENCH_serving.json: {e}]"),
    }
}

/// Writes the curation measurements to `BENCH_curation.json`: per-worker
/// throughput with the determinism cross-check, dedup/selectivity rates,
/// the kept-quality histogram, the near-dup recall probe, and the
/// drafter-warming arm.
fn write_bench_curation(r: &CurationResult, profile_name: &str) {
    let mut scale = String::new();
    for (i, p) in r.scale.iter().enumerate() {
        if i > 0 {
            scale.push_str(",\n");
        }
        scale.push_str(&format!(
            "    {{\"workers\": {}, \"docs_per_sec\": {:.1}, \"bytes_per_sec\": {:.0}, \
             \"output_identical\": {}}}",
            p.workers, p.docs_per_sec, p.bytes_per_sec, p.identical
        ));
    }
    let hist: Vec<String> = r.quality_hist.iter().map(|c| c.to_string()).collect();
    let json = format!(
        "{{\n  \"experiment\": \"streaming corpus curation\",\n  \"profile\": \"{}\",\n  \
         \"pipeline\": {{\"ingested\": {}, \"ingested_bytes\": {}, \"kept\": {}, \
         \"parse_failed\": {}, \"quality_rejected\": {}, \"exact_dups\": {}, \
         \"near_dups\": {}, \"exact_dup_rate\": {:.4}, \"near_dup_rate\": {:.4}, \
         \"shards\": {}, \"shard_bytes\": {}}},\n  \
         \"quality_hist\": [{}],\n  \
         \"note\": \"single-core host: worker scaling measures pipeline overhead, not \
         parallel speedup; the determinism contract is the point of the sweep\",\n  \
         \"scale\": [\n{}\n  ],\n  \
         \"recall_probe\": {{\"injected\": {}, \"caught\": {}, \"recall\": {:.4}}},\n  \
         \"drafter_warming\": {{\"model\": \"CodeGen-Multi 350M ft ctx1024\", \"k\": 8, \
         \"warm_tps\": {:.1}, \"warm_accepted_per_verify\": {:.3}, \
         \"cold_tps\": {:.1}, \"cold_accepted_per_verify\": {:.3}, \
         \"plain_greedy_tps\": {:.1}, \"warm_over_cold\": {:.3}}}\n}}\n",
        profile_name,
        r.ingested,
        r.ingested_bytes,
        r.kept,
        r.parse_failed,
        r.quality_rejected,
        r.exact_dups,
        r.near_dups,
        r.exact_dup_rate,
        r.near_dup_rate,
        r.shards,
        r.shard_bytes,
        hist.join(", "),
        scale,
        r.injected,
        r.injected_caught,
        r.recall(),
        r.warm_tps,
        r.warm_accepted,
        r.cold_tps,
        r.cold_accepted,
        r.baseline_tps,
        r.warm_speedup()
    );
    match std::fs::write("BENCH_curation.json", &json) {
        Ok(()) => eprintln!("[wrote BENCH_curation.json]"),
        Err(e) => eprintln!("[failed to write BENCH_curation.json: {e}]"),
    }
}
