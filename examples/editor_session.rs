//! Editor session: simulates the paper's VS Code plugin talking to the
//! REST inference service. The "editor" sends the buffer and the typed
//! `- name:` intent; the server returns a suggestion which the user accepts
//! (tab) when the schema check passes or rejects (esc) otherwise.
//!
//! ```text
//! cargo run --release --example editor_session
//! ```

use std::sync::Arc;

use ansible_wisdom::core::{Wisdom, WisdomConfig};
use ansible_wisdom::server::{request_completion, WisdomServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training assistant and starting inference server…");
    let config = if std::env::args().any(|a| a == "--standard") {
        WisdomConfig::standard()
    } else {
        WisdomConfig::tiny()
    };
    let wisdom = Arc::new(Wisdom::train(&config, None));
    let server = WisdomServer::bind(wisdom, "127.0.0.1:0")?;
    let handle = server.handle();
    let addr = handle.addr();
    std::thread::spawn(move || server.serve());
    println!("server listening on {addr}\n");

    let mut buffer = String::from("---\n");
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for intent in [
        "Install nginx",
        "Start nginx service",
        "Create deploy user",
        "Schedule nightly backup",
    ] {
        println!(">>> user types: - name: {intent}");
        let response = request_completion(addr, &buffer, intent)?;
        println!("{}", response.snippet);
        if response.schema_correct {
            println!("    [tab] accepted\n");
            buffer.push_str(&response.snippet);
            accepted += 1;
        } else {
            println!(
                "    [esc] rejected ({} lint finding(s))\n",
                response.lint.len()
            );
            rejected += 1;
        }
    }
    println!("session summary: {accepted} accepted, {rejected} rejected");
    println!("================ buffer ================");
    println!("{buffer}");
    handle.stop();
    Ok(())
}
