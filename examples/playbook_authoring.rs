//! Playbook authoring: the paper's motivating workflow. A user writes a
//! playbook one `- name:` intent at a time; Wisdom completes every task,
//! contexts accumulate (the PB+NL→T generation type), the linter gates each
//! suggestion, and the final document is standardized.
//!
//! ```text
//! cargo run --release --example playbook_authoring
//! ```

use ansible_wisdom::ansible::{lint_str, standardize, LintTarget};
use ansible_wisdom::core::{CompletionRequest, Wisdom, WisdomConfig};

fn main() {
    println!("training a small Wisdom assistant…");
    let config = if std::env::args().any(|a| a == "--standard") {
        WisdomConfig::standard()
    } else {
        WisdomConfig::tiny()
    };
    let wisdom = Wisdom::train(&config, None);

    // The playbook skeleton the user starts with.
    let mut buffer = String::from(
        "---\n- name: Setup web server\n  hosts: webservers\n  become: true\n  tasks:\n",
    );
    let intents = [
        "Install nginx",
        "Deploy nginx configuration",
        "Start and enable nginx",
        "Open port 80 in the firewall",
    ];

    for intent in intents {
        let request = CompletionRequest::new(buffer.as_str(), intent);
        let suggestion = wisdom.complete(&request);
        println!("== intent: {intent}");
        if suggestion.body.is_empty() {
            println!("   (no suggestion — keeping a manual placeholder)\n");
            buffer.push_str(&format!(
                "    - name: {intent}\n      ansible.builtin.debug:\n        msg: TODO\n"
            ));
            continue;
        }
        println!("{}", suggestion.snippet);
        println!(
            "   accepted: {} | lint findings: {}\n",
            suggestion.schema_correct,
            suggestion.lint.len()
        );
        // The plugin pastes accepted suggestions into the buffer.
        buffer.push_str(&suggestion.snippet);
    }

    println!("================ final playbook ================");
    println!("{buffer}");
    match standardize(&buffer) {
        Ok(canonical) => {
            println!("============= standardized form ================");
            println!("{canonical}");
            let violations = lint_str(&canonical, LintTarget::Playbook);
            println!(
                "final lint: {} finding(s){}",
                violations.len(),
                if violations.is_empty() {
                    " — ready to run"
                } else {
                    ""
                }
            );
            for v in violations.iter().take(5) {
                println!("  - {v}");
            }
        }
        Err(e) => println!("buffer is not valid YAML: {e}"),
    }
}
