//! Inspect raw generations of a fine-tuned model, side by side with the
//! gold completions — the qualitative-debugging loop used while developing
//! models and corpora.
//!
//! ```text
//! cargo run --release --example inspect_generations -- quick
//! ```
use ansible_wisdom::corpus::PromptStyle;
use ansible_wisdom::eval::{postprocess, Profile, SizeClass, Zoo};
use ansible_wisdom::model::{GenerationOptions, TextGenerator};

fn main() {
    let profile = Profile::by_name(&std::env::args().nth(1).unwrap_or_else(|| "test".into()))
        .expect("profile: test|quick|paper");
    let mut zoo = Zoo::build(profile);
    eprintln!(
        "galaxy={} train={} test={}",
        zoo.corpus.galaxy.len(),
        zoo.split.train.len(),
        zoo.split.test.len()
    );
    let spec = *ansible_wisdom::eval::spec("CodeGen-Multi", SizeClass::S350m).unwrap();
    let mut losses = vec![];
    let mut cb = |_s: usize, _t: usize, l: f32| losses.push(l);
    let gen = zoo.finetuned_generator(
        "cgm",
        &spec,
        1024,
        PromptStyle::NameCompletion,
        1.0,
        Some(&mut cb),
    );
    eprintln!(
        "steps={} first={:?} last={:?}",
        losses.len(),
        losses.first(),
        losses.last()
    );
    for (i, chunk) in losses.chunks(losses.len().div_ceil(12).max(1)).enumerate() {
        let mean: f32 = chunk.iter().sum::<f32>() / chunk.len() as f32;
        eprintln!("  loss[{}] = {:.3}", i, mean);
    }
    let opts = GenerationOptions {
        max_new_tokens: profile.max_new_tokens,
        ..Default::default()
    };
    for s in zoo.split.test.iter().take(5) {
        let prompt = s.prompt_text(PromptStyle::NameCompletion);
        let raw = gen.complete(&prompt, &opts);
        let post = postprocess(s, &raw);
        println!("=== type {:?} nl: {}", s.gen_type, s.nl);
        println!("--- expected:\n{}", s.expected);
        println!(
            "--- raw ({} chars):\n{:?}",
            raw.len(),
            &raw[..raw.len().min(400)]
        );
        println!("--- post:\n{}", post);
    }
}
