//! Runs the Wisdom inference server on a fixed port.
//!
//! ```text
//! cargo run --release --example serve -- 8731 --standard
//! cargo run --release --example serve -- 8731 --int8   # int8-packed replicas
//! curl -s localhost:8731/healthz
//! curl -s localhost:8731/v1/completions -d '{"prompt":"install nginx"}'
//! ```

use std::sync::Arc;

use ansible_wisdom::core::{Precision, Wisdom, WisdomConfig};
use ansible_wisdom::server::{ServerConfig, WisdomServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let port: u16 = std::env::args()
        .nth(1)
        .and_then(|p| p.parse().ok())
        .unwrap_or(8731);
    let config = if std::env::args().any(|a| a == "--standard") {
        WisdomConfig::standard()
    } else {
        WisdomConfig::tiny()
    };
    let precision = if std::env::args().any(|a| a == "--int8") {
        Precision::Int8
    } else {
        Precision::F32
    };
    println!("training model ({config:?}, serving at {precision:?})…");
    let wisdom = Arc::new(Wisdom::train(&config, None));
    let server = WisdomServer::bind_with(
        wisdom,
        ("127.0.0.1", port),
        ServerConfig {
            precision,
            ..ServerConfig::default()
        },
    )?;
    println!("serving on http://127.0.0.1:{port}  (POST /v1/completions, GET /healthz)");
    server.serve();
    Ok(())
}
