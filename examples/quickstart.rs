//! Quickstart: train a small Ansible Wisdom assistant end to end and ask it
//! for task completions, exactly the paper's intended usage loop.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ansible_wisdom::core::{TrainPhase, Wisdom, WisdomConfig};

fn main() {
    // `tiny()` finishes in seconds; switch to `standard()` for a genuinely
    // useful assistant (a few minutes in release mode).
    let config = if std::env::args().any(|a| a == "--standard") {
        WisdomConfig::standard()
    } else {
        WisdomConfig::tiny()
    };
    println!("training Ansible Wisdom ({config:?})…");
    let mut last_phase = None;
    let mut progress = |phase: TrainPhase, step: usize, total: usize| {
        if last_phase != Some(phase) {
            println!("  phase: {phase:?}");
            last_phase = Some(phase);
        }
        if total > 0 && step.is_multiple_of(50) {
            println!("    step {step}/{total}");
        }
    };
    let wisdom = Wisdom::train(&config, Some(&mut progress));
    println!("trained: {wisdom:?}\n");

    for intent in [
        "Install nginx",
        "Start and enable nginx",
        "Create deploy user",
        "Open port 443 in the firewall",
    ] {
        let suggestion = wisdom.complete_task("", intent);
        println!("---- prompt: {intent}");
        println!("{}", suggestion.snippet);
        if suggestion.schema_correct {
            println!("  [schema: OK]\n");
        } else {
            println!("  [schema: {} finding(s)]", suggestion.lint.len());
            for v in suggestion.lint.iter().take(3) {
                println!("    - {v}");
            }
            println!();
        }
    }
}
